"""The scenario registry: named, content-hashed, runtime-native specs.

A :class:`ScenarioSpec` is the declarative form of one synthesized workload:
a generator name, JSON-scalar parameters, and a seed.  Building it twice --
in this process, a worker process, or next week -- yields bit-identical
traces, so a spec can flow through the runtime exactly like a built-in
workload: ``spec.trace_spec()`` returns a ``TraceSpec`` for the ``scenario``
builder that :mod:`repro.runtime.jobs` registers in ``TRACE_BUILDERS``, which
makes every synthesized scenario cacheable, dedupable, and process-safe.

:data:`SCENARIOS` is the named catalog the ``scenarios`` campaign, the
robustness experiment, and the ``python -m repro scenarios`` CLI all draw
from.  Catalog entries are plain specs; nothing stops an experiment from
minting ad-hoc specs (new seeds, new parameters) beyond the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

# Importing the sibling modules registers their generators (markov included).
from repro import config
from repro.hashing import content_hash
from repro.params import (
    Params,
    normalize_params as _normalize_params,
    params_to_jsonable as _params_to_jsonable,
)
from repro.runtime.jobs import TraceSpec
from repro.scenarios import markov as _markov  # noqa: F401  (registers "markov")
from repro.scenarios.generators import GENERATORS
from repro.workloads.trace import WorkloadTrace


@dataclass(frozen=True)
class ScenarioSpec:
    """One synthesized workload: generator + JSON-scalar params + seed."""

    name: str
    generator: str
    seed: int = config.DEFAULT_SEED
    params: Params = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.generator not in GENERATORS:
            raise KeyError(
                f"unknown generator {self.generator!r}; known: {sorted(GENERATORS)}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise ValueError(f"scenario {self.name!r}: seed must be a non-negative int")

    @classmethod
    def make(
        cls,
        name: str,
        generator: str,
        seed: int = config.DEFAULT_SEED,
        description: str = "",
        **params: Any,
    ) -> "ScenarioSpec":
        """Build a spec from keyword parameters (order-insensitive)."""
        return cls(
            name=name,
            generator=generator,
            seed=seed,
            params=_normalize_params(params),
            description=description,
        )

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def build(self) -> WorkloadTrace:
        """Synthesize the trace (deterministic: pure function of the spec)."""
        info = GENERATORS[self.generator]
        rng = np.random.default_rng(self.seed)
        phases = info.fn(rng, **{key: value for key, value in self.params})
        # The trace description comes from the generator, not the catalog
        # entry: `trace_spec()` does not carry the description (it must not
        # affect content hashes), so a worker rebuilding the trace from the
        # runtime spec has to produce a bit-identical object.
        return WorkloadTrace(
            name=f"scenario:{self.name}",
            workload_class=info.workload_class,
            phases=tuple(phases),
            metric=info.metric,
            description=f"synthesized scenario ({info.summary})",
        )

    def trace_spec(self) -> TraceSpec:
        """The runtime-native trace spec (builder ``scenario``).

        The spec carries the *full* scenario definition -- generator, seed,
        parameters -- not just the catalog name, so job content hashes are
        self-describing: editing a catalog entry changes the hash, and a
        worker process can rebuild the trace without the catalog at all.
        """
        return TraceSpec.make(
            "scenario",
            name=self.name,
            generator=self.generator,
            seed=self.seed,
            **{key: value for key, value in self.params},
        )

    @property
    # Deliberately unstamped: a scenario's hash *is* its runtime trace-spec
    # payload, whose schema (and version stamp) is governed at the job level
    # by repro.runtime.jobs.SCHEMA_VERSION.  Stamping a second version here
    # would change every published scenario hash for no new information.
    def content_hash(self) -> str:  # reprolint: disable=hash-surface
        """Hash of what the runtime hashes: the full trace-spec payload."""
        return content_hash(self.trace_spec().to_dict())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "generator": self.generator,
            "seed": self.seed,
            "params": _params_to_jsonable(self.params),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        return cls.make(
            data["name"],
            data["generator"],
            seed=data.get("seed", config.DEFAULT_SEED),
            description=data.get("description", ""),
            **data.get("params", {}),
        )


def build_scenario_trace(
    name: str = "anonymous",
    generator: str = "bursty",
    seed: int = config.DEFAULT_SEED,
    **params: Any,
) -> WorkloadTrace:
    """The ``scenario`` trace builder (see ``repro.runtime.jobs.TRACE_BUILDERS``)."""
    return ScenarioSpec.make(name, generator, seed=seed, **params).build()


# ---------------------------------------------------------------------------
# The catalog
# ---------------------------------------------------------------------------


def _catalog(entries: Iterable[ScenarioSpec]) -> Dict[str, ScenarioSpec]:
    catalog: Dict[str, ScenarioSpec] = {}
    for spec in entries:
        if spec.name in catalog:
            raise ValueError(f"duplicate scenario name {spec.name!r}")
        catalog[spec.name] = spec
    return catalog


#: The named scenario catalog: >= 20 scenarios spanning every generator family,
#: with deliberately varied seeds so equal parameters still produce distinct
#: workloads.
SCENARIOS: Dict[str, ScenarioSpec] = _catalog(
    [
        # -- bursty ----------------------------------------------------
        ScenarioSpec.make(
            "bursty-light", "bursty", seed=101, burst_gbps=10.0, burst_fraction=0.25,
            description="mild memory bursts over a compute floor",
        ),
        ScenarioSpec.make(
            "bursty-heavy", "bursty", seed=102, burst_gbps=20.0, burst_fraction=0.5,
            description="deep, frequent memory bursts near the interface ceiling",
        ),
        ScenarioSpec.make(
            "bursty-long", "bursty", seed=103, duration=2.0, segments=16,
            description="a long bursty span (twice the default horizon)",
        ),
        # -- periodic --------------------------------------------------
        ScenarioSpec.make(
            "periodic-fast", "periodic", seed=111, period=0.06,
            description="square wave at twice the evaluation-interval rate",
        ),
        ScenarioSpec.make(
            "periodic-slow", "periodic", seed=112, period=0.24,
            description="slow square wave: whole evaluation windows per level",
        ),
        ScenarioSpec.make(
            "periodic-highduty", "periodic", seed=113, duty_cycle=0.7,
            description="demand high 70% of every period",
        ),
        # -- ramps -----------------------------------------------------
        ScenarioSpec.make(
            "ramp-up", "ramp", seed=121, start_gbps=1.0, end_gbps=18.0,
            description="demand ramping from idle toward the ceiling",
        ),
        ScenarioSpec.make(
            "ramp-down", "ramp", seed=122, start_gbps=18.0, end_gbps=1.0,
            description="demand decaying from the ceiling toward idle",
        ),
        ScenarioSpec.make(
            "sawtooth-3", "sawtooth", seed=123, teeth=3,
            description="three ramp teeth, each forcing an up/down transition",
        ),
        # -- idle-heavy ------------------------------------------------
        ScenarioSpec.make(
            "idle-mostly", "idle_heavy", seed=131, active_fraction=0.15,
            description="mostly deep package idle with brief wakeups",
        ),
        ScenarioSpec.make(
            "idle-busy", "idle_heavy", seed=132, active_fraction=0.45,
            description="idle-structured but nearly half active",
        ),
        # -- memory thrash ---------------------------------------------
        ScenarioSpec.make(
            "thrash-sustained", "memory_thrash", seed=141,
            description="sustained near-ceiling demand: never scale down",
        ),
        ScenarioSpec.make(
            "thrash-spiky", "memory_thrash", seed=142, segments=12, demand_gbps=18.0,
            description="many short thrash segments with jittered intensity",
        ),
        # -- graphics interference -------------------------------------
        ScenarioSpec.make(
            "gfx-interference-light", "graphics_interference", seed=151, cpu_gbps=3.0,
            description="render loop with light CPU contention",
        ),
        ScenarioSpec.make(
            "gfx-interference-heavy", "graphics_interference", seed=152,
            cpu_gbps=8.0, gfx_gbps=10.0,
            description="render loop fighting a bandwidth-hungry CPU",
        ),
        # -- IO streaming ----------------------------------------------
        ScenarioSpec.make(
            "io-stream-hd", "io_streaming", seed=161, stream_gbps=2.4,
            description="HD-class isochronous streaming",
        ),
        ScenarioSpec.make(
            "io-stream-4k", "io_streaming", seed=162, stream_gbps=6.2,
            description="4K-class isochronous streaming",
        ),
        # -- composites ------------------------------------------------
        ScenarioSpec.make(
            "burst-then-idle", "burst_then_idle", seed=171,
            description="race-to-idle: a bursty span then an idle tail",
        ),
        ScenarioSpec.make(
            "gfx-plus-stream", "coresident_gfx_stream", seed=172,
            description="graphics and streaming co-resident on one SoC",
        ),
        ScenarioSpec.make(
            "interleaved-thrash", "interleaved_thrash", seed=173,
            description="predictable wave interleaved with worst-case thrash",
        ),
        # -- Markov walks ----------------------------------------------
        ScenarioSpec.make(
            "markov-mobile-day", "markov", seed=181, model="mobile_day",
            description="the Fig. 3 shape: idle/browse/video/compute/thrash walk",
        ),
        ScenarioSpec.make(
            "markov-office", "markov", seed=182, model="office",
            description="productivity walk: idle, typing, recalc, IO flushes",
        ),
        ScenarioSpec.make(
            "markov-thrash-cycle", "markov", seed=183, model="thrash_cycle", duration=1.5,
            description="adversarial walk between compute and sticky thrash",
        ),
        ScenarioSpec.make(
            "markov-mobile-alt-seed", "markov", seed=184, model="mobile_day",
            description="a second mobile-day walk from a different seed",
        ),
    ]
)


def catalog_trace_specs(names: Optional[Iterable[str]] = None) -> List[TraceSpec]:
    """Trace specs for ``names`` (default: the whole catalog, sorted)."""
    if names is None:
        names = sorted(SCENARIOS)
    specs: List[TraceSpec] = []
    for name in names:
        if name not in SCENARIOS:
            raise KeyError(
                f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
            )
        specs.append(SCENARIOS[name].trace_spec())
    return specs
