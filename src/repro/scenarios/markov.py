"""Phase-transition Markov models: long traces with realistic dwell structure.

Fig. 3 of the paper shows what real mobile workloads look like over time:
bandwidth demand does not wander randomly, it *dwells* in recognizable regimes
(idle, browsing burst, video, compute, memory-heavy) and recurs between them.
A :class:`PhaseMarkovModel` captures exactly that: a set of named states, each
an archetypal phase shape with a mean dwell time, plus a row-stochastic
transition matrix.  Walking the chain with a seeded generator emits arbitrarily
long, deterministic phase sequences with the Fig. 3 recurrence shape.

The models in :data:`MARKOV_MODELS` are reachable from the scenario catalog
through the ``markov`` generator (``model=<name>``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.power.cstates import CStateResidency
from repro.scenarios.generators import (
    DEEP_IDLE_RESIDENCY,
    MIN_PHASE_DURATION,
    make_phase,
    register_generator,
)
from repro.workloads.trace import PerformanceMetric, Phase, WorkloadClass


@dataclass(frozen=True)
class MarkovState:
    """One regime: an archetypal phase shape plus its dwell-time scale.

    Demands are ``(low, high)`` GB/s ranges sampled per visit, so two visits to
    the same state differ in intensity the way Fig. 3's recurring bursts do.
    """

    name: str
    mean_dwell: float
    compute: float = 0.0
    gfx: float = 0.0
    memory_latency: float = 0.0
    memory_bandwidth: float = 0.0
    io: float = 0.0
    cpu_gbps: Tuple[float, float] = (0.2, 1.0)
    gfx_gbps: Tuple[float, float] = (0.0, 0.0)
    io_gbps: Tuple[float, float] = (0.0, 0.0)
    cpu_activity: float = 0.9
    gfx_activity: float = 0.0
    io_activity: float = 0.2
    active_cores: int = 2
    deep_idle: bool = False

    def __post_init__(self) -> None:
        if self.mean_dwell < MIN_PHASE_DURATION:
            raise ValueError(
                f"state {self.name!r}: mean dwell must be at least "
                f"{MIN_PHASE_DURATION} s, got {self.mean_dwell}"
            )
        for label in ("cpu_gbps", "gfx_gbps", "io_gbps"):
            low, high = getattr(self, label)
            if low < 0 or high < low:
                raise ValueError(
                    f"state {self.name!r}: {label} must be a non-negative "
                    f"(low, high) range, got ({low}, {high})"
                )

    def emit(self, rng: np.random.Generator, duration: float, index: int) -> Phase:
        """One phase for a visit of ``duration`` seconds."""
        residency = (
            CStateResidency(DEEP_IDLE_RESIDENCY) if self.deep_idle else None
        )
        return make_phase(
            f"{self.name}_{index}",
            duration,
            compute=self.compute,
            gfx=self.gfx,
            memory_latency=self.memory_latency,
            memory_bandwidth=self.memory_bandwidth,
            io=self.io,
            cpu_gbps=float(rng.uniform(*self.cpu_gbps)),
            gfx_gbps=float(rng.uniform(*self.gfx_gbps)),
            io_gbps=float(rng.uniform(*self.io_gbps)),
            cpu_activity=self.cpu_activity,
            gfx_activity=self.gfx_activity,
            io_activity=self.io_activity,
            active_cores=self.active_cores,
            residency=residency,
        )


@dataclass(frozen=True)
class PhaseMarkovModel:
    """A named chain over :class:`MarkovState` with a row-stochastic matrix."""

    name: str
    states: Tuple[MarkovState, ...]
    transitions: Tuple[Tuple[float, ...], ...]
    initial: Optional[Tuple[float, ...]] = None
    dwell_jitter: float = 0.4

    def __post_init__(self) -> None:
        n = len(self.states)
        if n == 0:
            raise ValueError(f"model {self.name!r} needs at least one state")
        if len(self.transitions) != n or any(len(row) != n for row in self.transitions):
            raise ValueError(f"model {self.name!r}: transition matrix must be {n}x{n}")
        for state, row in zip(self.states, self.transitions):
            if any(p < 0 for p in row):
                raise ValueError(
                    f"model {self.name!r}: negative transition probability "
                    f"from state {state.name!r}"
                )
            if abs(sum(row) - 1.0) > 1e-9:
                raise ValueError(
                    f"model {self.name!r}: transitions from state "
                    f"{state.name!r} must sum to 1, got {sum(row):.9f}"
                )
        if self.initial is not None:
            if len(self.initial) != n or abs(sum(self.initial) - 1.0) > 1e-9:
                raise ValueError(
                    f"model {self.name!r}: initial distribution must be a "
                    f"length-{n} probability vector"
                )
        if not 0.0 <= self.dwell_jitter < 1.0:
            raise ValueError(
                f"model {self.name!r}: dwell jitter must be in [0, 1), "
                f"got {self.dwell_jitter}"
            )

    def generate(self, rng: np.random.Generator, duration: float) -> List[Phase]:
        """Walk the chain until ``duration`` seconds of phases are emitted."""
        if duration < MIN_PHASE_DURATION:
            raise ValueError(
                f"duration must be at least {MIN_PHASE_DURATION} s, got {duration}"
            )
        n = len(self.states)
        initial = self.initial or tuple(1.0 / n for _ in range(n))
        state = int(rng.choice(n, p=initial))
        phases: List[Phase] = []
        elapsed = 0.0
        index = 0
        while duration - elapsed > 1e-9:
            current = self.states[state]
            dwell = current.mean_dwell * float(
                rng.uniform(1.0 - self.dwell_jitter, 1.0 + self.dwell_jitter)
            )
            remaining = duration - elapsed
            # Never leave a sub-tick stub behind: absorb a short remainder
            # into this visit instead of emitting a degenerate final phase.
            if remaining - dwell < MIN_PHASE_DURATION:
                dwell = remaining
            phases.append(current.emit(rng, dwell, index))
            elapsed += dwell
            index += 1
            state = int(rng.choice(n, p=self.transitions[state]))
        return phases


def _mobile_day_model() -> PhaseMarkovModel:
    """The Fig. 3 shape: idle <-> browse bursts, video spans, compute, thrash."""
    states = (
        MarkovState(
            "idle", mean_dwell=0.12, compute=0.08, io=0.05,
            cpu_gbps=(0.1, 0.4), io_gbps=(0.1, 0.4),
            cpu_activity=0.1, io_activity=0.15, active_cores=1, deep_idle=True,
        ),
        MarkovState(
            "browse", mean_dwell=0.06, compute=0.45, memory_latency=0.18,
            memory_bandwidth=0.1, io=0.06,
            cpu_gbps=(2.0, 9.0), io_gbps=(0.2, 1.0), cpu_activity=0.85,
        ),
        MarkovState(
            "video", mean_dwell=0.15, compute=0.15, gfx=0.2, io=0.15,
            memory_bandwidth=0.08,
            cpu_gbps=(0.5, 1.5), gfx_gbps=(1.0, 3.0), io_gbps=(1.5, 3.5),
            cpu_activity=0.3, gfx_activity=0.5, io_activity=0.7, active_cores=1,
        ),
        MarkovState(
            "compute", mean_dwell=0.1, compute=0.8, memory_latency=0.08,
            cpu_gbps=(1.0, 4.0), cpu_activity=0.95,
        ),
        MarkovState(
            "memory_heavy", mean_dwell=0.05, compute=0.2, memory_latency=0.25,
            memory_bandwidth=0.4,
            cpu_gbps=(14.0, 21.0), cpu_activity=0.95,
        ),
    )
    transitions = (
        (0.45, 0.30, 0.15, 0.08, 0.02),
        (0.25, 0.35, 0.10, 0.20, 0.10),
        (0.15, 0.10, 0.65, 0.05, 0.05),
        (0.10, 0.20, 0.05, 0.45, 0.20),
        (0.05, 0.15, 0.05, 0.35, 0.40),
    )
    return PhaseMarkovModel(name="mobile_day", states=states, transitions=transitions)


def _office_model() -> PhaseMarkovModel:
    """Productivity shape: long idle, typing bursts, occasional IO flushes."""
    states = (
        MarkovState(
            "idle", mean_dwell=0.2, compute=0.06, io=0.04,
            cpu_gbps=(0.1, 0.3), io_gbps=(0.1, 0.3),
            cpu_activity=0.08, io_activity=0.1, active_cores=1, deep_idle=True,
        ),
        MarkovState(
            "type", mean_dwell=0.08, compute=0.5, memory_latency=0.12, io=0.05,
            cpu_gbps=(1.0, 4.0), io_gbps=(0.2, 0.8),
            cpu_activity=0.7, active_cores=1,
        ),
        MarkovState(
            "recalc", mean_dwell=0.06, compute=0.65, memory_latency=0.15,
            memory_bandwidth=0.1,
            cpu_gbps=(4.0, 12.0), cpu_activity=0.95,
        ),
        MarkovState(
            "save", mean_dwell=0.04, compute=0.25, io=0.3,
            cpu_gbps=(0.5, 2.0), io_gbps=(2.0, 6.0),
            cpu_activity=0.5, io_activity=0.85, active_cores=1,
        ),
    )
    transitions = (
        (0.55, 0.35, 0.05, 0.05),
        (0.30, 0.45, 0.15, 0.10),
        (0.20, 0.40, 0.30, 0.10),
        (0.50, 0.35, 0.10, 0.05),
    )
    return PhaseMarkovModel(name="office", states=states, transitions=transitions)


def _thrash_cycle_model() -> PhaseMarkovModel:
    """Adversarial shape: compute spans punctuated by sticky thrash regimes."""
    states = (
        MarkovState(
            "compute", mean_dwell=0.08, compute=0.82, memory_latency=0.08,
            cpu_gbps=(1.0, 5.0), cpu_activity=0.95,
        ),
        MarkovState(
            "thrash", mean_dwell=0.07, compute=0.15, memory_latency=0.3,
            memory_bandwidth=0.45,
            cpu_gbps=(16.0, 21.5), cpu_activity=0.98,
        ),
    )
    transitions = (
        (0.7, 0.3),
        (0.35, 0.65),
    )
    return PhaseMarkovModel(name="thrash_cycle", states=states, transitions=transitions)


#: Named models reachable from the ``markov`` generator (``model=<name>``).
MARKOV_MODELS: Dict[str, PhaseMarkovModel] = {
    model.name: model
    for model in (_mobile_day_model(), _office_model(), _thrash_cycle_model())
}


@register_generator(
    "markov", WorkloadClass.CPU_MULTI_THREAD, PerformanceMetric.BENCHMARK_SCORE,
    "phase-transition Markov walk with realistic dwell/recurrence (Fig. 3 shape)",
)
def markov(
    rng: np.random.Generator,
    duration: float = 2.0,
    model: str = "mobile_day",
) -> List[Phase]:
    """A seeded walk of one of the :data:`MARKOV_MODELS` chains."""
    if model not in MARKOV_MODELS:
        raise KeyError(
            f"unknown Markov model {model!r}; known: {sorted(MARKOV_MODELS)}"
        )
    return MARKOV_MODELS[model].generate(rng, duration)
