"""Seeded scenario synthesis: composable phase generators and a named catalog.

The paper's evaluation leans on workload *diversity*: Sec. 4.2 calibrates the
demand predictor on a 1600-workload corpus, and Fig. 3 shows bandwidth demand
swinging sharply over time within a single workload.  The hand-built traces in
:mod:`repro.workloads` replay the paper's figures; this package goes further
and *synthesizes* workloads, so the reproduced policy can be stress-tested on
an unbounded scenario space:

* :mod:`repro.scenarios.generators` -- parameterized phase-pattern generators
  (bursty, periodic, ramp, idle-heavy, memory-thrash, graphics-interference,
  io-streaming, plus composites), each a pure function of a seeded
  ``numpy.random.Generator``;
* :mod:`repro.scenarios.compose` -- operators (``concat``, ``interleave``,
  ``scale_duration``, ``mix``, ``repeat``) that build complex scenarios from
  primitives;
* :mod:`repro.scenarios.markov` -- a phase-transition Markov model producing
  long traces with realistic dwell/recurrence structure (the Fig. 3 shape);
* :mod:`repro.scenarios.registry` -- :class:`ScenarioSpec` (generator +
  JSON-scalar params + seed) and the named :data:`SCENARIOS` catalog, bridged
  into ``repro.runtime.jobs.TRACE_BUILDERS`` so every synthesized scenario is
  cacheable, dedupable, and process-safe exactly like a built-in trace.
"""

from repro.scenarios.compose import concat, interleave, mix, repeat, scale_duration
from repro.scenarios.generators import GENERATORS, GeneratorInfo
from repro.scenarios.markov import MARKOV_MODELS, MarkovState, PhaseMarkovModel
from repro.scenarios.registry import (
    SCENARIOS,
    ScenarioSpec,
    build_scenario_trace,
    catalog_trace_specs,
)

__all__ = [
    "GENERATORS",
    "GeneratorInfo",
    "MARKOV_MODELS",
    "MarkovState",
    "PhaseMarkovModel",
    "SCENARIOS",
    "ScenarioSpec",
    "build_scenario_trace",
    "catalog_trace_specs",
    "concat",
    "interleave",
    "mix",
    "repeat",
    "scale_duration",
]
