"""Parameterized phase-pattern generators.

Every generator is a pure function of a ``numpy.random.Generator`` plus
JSON-scalar parameters, returning a valid :class:`~repro.workloads.trace.Phase`
sequence: same seed, same parameters -> bit-identical phases, in any process.
That purity is what lets :mod:`repro.scenarios.registry` hand a scenario to the
runtime as a declarative, content-hashed trace spec.

Generators come in two layers:

* **primitives** -- one demand pattern each (bursty, periodic, ramp,
  idle-heavy, memory-thrash, graphics-interference, io-streaming);
* **composites** -- built from primitives with the
  :mod:`repro.scenarios.compose` operators (burst-then-idle, sawtooth,
  graphics+streaming co-residency, interleaved thrash).

All demand figures are GB/s at the reference configuration; the dual-channel
LPDDR3-1600 interface sustains ~22 GB/s, so the bandwidth-bound fraction of a
phase grows as demand approaches that ceiling (same model as the Fig. 6
calibration corpus).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import config
from repro.power.cstates import CState, CStateResidency
from repro.scenarios import compose
from repro.workloads.trace import PerformanceMetric, Phase, WorkloadClass

#: Achievable dual-channel LPDDR3-1600 bandwidth (GB/s); demand near this
#: ceiling forces a bandwidth-bound fraction.
CEILING_GBPS = 22.0

#: Bottleneck fractions a generator asks for are scaled into ``1 - _MIN_OTHER``
#: so every phase keeps a small uncontrollable ("other") fraction, as every
#: characterized workload in the repo does.
_MIN_OTHER = 0.02

#: Shortest phase a generator may emit (seconds); phases shorter than the
#: 1 ms engine tick would vanish from the simulation.
MIN_PHASE_DURATION = 0.01

PhaseGenerator = Callable[..., List[Phase]]


@dataclass(frozen=True)
class GeneratorInfo:
    """One registered generator plus the trace metadata it implies."""

    name: str
    fn: PhaseGenerator
    workload_class: WorkloadClass
    metric: PerformanceMetric
    summary: str


#: Name -> generator registry; :mod:`repro.scenarios.markov` adds ``markov``.
GENERATORS: Dict[str, GeneratorInfo] = {}


def register_generator(
    name: str,
    workload_class: WorkloadClass,
    metric: PerformanceMetric,
    summary: str,
) -> Callable[[PhaseGenerator], PhaseGenerator]:
    """Register a phase generator under ``name`` (decorator)."""

    def decorate(fn: PhaseGenerator) -> PhaseGenerator:
        if name in GENERATORS:
            raise ValueError(f"generator {name!r} is already registered")
        GENERATORS[name] = GeneratorInfo(
            name=name, fn=fn, workload_class=workload_class, metric=metric,
            summary=summary,
        )
        return fn

    return decorate


# ---------------------------------------------------------------------------
# Phase construction helpers
# ---------------------------------------------------------------------------


def make_phase(
    name: str,
    duration: float,
    *,
    compute: float = 0.0,
    gfx: float = 0.0,
    memory_latency: float = 0.0,
    memory_bandwidth: float = 0.0,
    io: float = 0.0,
    cpu_gbps: float = 0.0,
    gfx_gbps: float = 0.0,
    io_gbps: float = 0.0,
    cpu_activity: float = 0.9,
    gfx_activity: float = 0.0,
    io_activity: float = 0.2,
    active_cores: int = config.SKYLAKE_CORE_COUNT,
    residency: Optional[CStateResidency] = None,
) -> Phase:
    """Build a valid phase from bottleneck *weights* and GB/s demands.

    The five controllable fractions are scaled (if necessary) into the
    ``1 - _MIN_OTHER`` budget and the remainder becomes ``other_fraction``, so
    the result always satisfies the :class:`Phase` sum-to-1 invariant no matter
    what a generator's random draws produced.
    """
    weights = [compute, gfx, memory_latency, memory_bandwidth, io]
    if any(w < 0 for w in weights):
        raise ValueError(f"phase {name!r}: bottleneck weights must be non-negative")
    total = sum(weights)
    budget = 1.0 - _MIN_OTHER
    if total > budget:
        weights = [w * budget / total for w in weights]
        total = sum(weights)
    extra = {} if residency is None else {"residency": residency}
    return Phase(
        name=name,
        duration=duration,
        compute_fraction=weights[0],
        gfx_fraction=weights[1],
        memory_latency_fraction=weights[2],
        memory_bandwidth_fraction=weights[3],
        io_fraction=weights[4],
        other_fraction=1.0 - total,
        cpu_bandwidth_demand=config.gbps(cpu_gbps),
        gfx_bandwidth_demand=config.gbps(gfx_gbps),
        io_bandwidth_demand=config.gbps(io_gbps),
        cpu_activity=cpu_activity,
        gfx_activity=gfx_activity,
        io_activity=io_activity,
        active_cores=active_cores,
        **extra,
    )


def bandwidth_pressure(demand_gbps: float) -> float:
    """Bandwidth-bound fraction implied by a GB/s demand (corpus model)."""
    return min(0.6, max(0.0, demand_gbps / CEILING_GBPS - 0.3) * 1.2)


def _check_duration(duration: float, segments: int = 1) -> None:
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if segments < 1:
        raise ValueError(f"segment count must be at least 1, got {segments}")
    if duration / max(1, 2 * segments) < MIN_PHASE_DURATION:
        raise ValueError(
            f"duration {duration} s is too short for {segments} segment(s); "
            f"phases must be at least {MIN_PHASE_DURATION} s"
        )


def _jitter(rng: np.random.Generator, spread: float = 0.2) -> float:
    """A multiplicative jitter factor in ``[1 - spread, 1 + spread]``."""
    return float(rng.uniform(1.0 - spread, 1.0 + spread))


#: Deep-idle residency used by idle-heavy scenarios (video-playback shape,
#: Sec. 7.3: mostly package C8 with brief C0/C2 wakeups).
DEEP_IDLE_RESIDENCY = {CState.C0: 0.10, CState.C2: 0.08, CState.C8: 0.82}


# ---------------------------------------------------------------------------
# Primitive generators
# ---------------------------------------------------------------------------


@register_generator(
    "bursty", WorkloadClass.CPU_MULTI_THREAD, PerformanceMetric.BENCHMARK_SCORE,
    "alternating high-demand memory bursts and compute-heavy quiet intervals",
)
def bursty(
    rng: np.random.Generator,
    duration: float = 1.0,
    segments: int = 8,
    burst_fraction: float = 0.35,
    burst_gbps: float = 16.0,
    quiet_gbps: float = 1.5,
) -> List[Phase]:
    """Bursty demand: short memory-bound spikes over a compute-bound floor."""
    _check_duration(duration, segments)
    if not 0.0 < burst_fraction < 1.0:
        raise ValueError(f"burst fraction must be in (0, 1), got {burst_fraction}")
    if burst_gbps < 0 or quiet_gbps < 0:
        raise ValueError("demands must be non-negative")
    segment = duration / segments
    phases: List[Phase] = []
    for index in range(segments):
        share = min(0.9, max(0.1, burst_fraction * _jitter(rng, 0.4)))
        demand = burst_gbps * _jitter(rng)
        phases.append(
            make_phase(
                f"burst_{index}", segment * share,
                compute=0.3, memory_latency=0.15,
                memory_bandwidth=max(0.1, bandwidth_pressure(demand)),
                cpu_gbps=demand, cpu_activity=0.95,
            )
        )
        phases.append(
            make_phase(
                f"quiet_{index}", segment * (1.0 - share),
                compute=0.8, memory_latency=0.06, memory_bandwidth=0.02,
                cpu_gbps=quiet_gbps * _jitter(rng, 0.3), cpu_activity=0.85,
            )
        )
    return phases


@register_generator(
    "periodic", WorkloadClass.CPU_MULTI_THREAD, PerformanceMetric.BENCHMARK_SCORE,
    "square-wave bandwidth demand with a fixed period and duty cycle",
)
def periodic(
    rng: np.random.Generator,
    duration: float = 1.0,
    period: float = 0.12,
    duty_cycle: float = 0.4,
    high_gbps: float = 14.0,
    low_gbps: float = 2.0,
) -> List[Phase]:
    """Periodic demand: the paper's evaluation-interval stressor (Sec. 5.1)."""
    _check_duration(duration)
    if period < 2 * MIN_PHASE_DURATION or period > duration:
        raise ValueError(
            f"period must be in [{2 * MIN_PHASE_DURATION}, duration], got {period}"
        )
    if not 0.0 < duty_cycle < 1.0:
        raise ValueError(f"duty cycle must be in (0, 1), got {duty_cycle}")
    if high_gbps < 0 or low_gbps < 0:
        raise ValueError("demands must be non-negative")
    phases: List[Phase] = []
    elapsed = 0.0
    index = 0
    while duration - elapsed > MIN_PHASE_DURATION:
        cycle = min(period, duration - elapsed)
        high_d = cycle * duty_cycle
        demand = high_gbps * _jitter(rng, 0.05)
        phases.append(
            make_phase(
                f"high_{index}", high_d,
                compute=0.35, memory_latency=0.1,
                memory_bandwidth=max(0.08, bandwidth_pressure(demand)),
                cpu_gbps=demand, cpu_activity=0.95,
            )
        )
        if cycle - high_d > MIN_PHASE_DURATION:
            phases.append(
                make_phase(
                    f"low_{index}", cycle - high_d,
                    compute=0.75, memory_latency=0.05, memory_bandwidth=0.02,
                    cpu_gbps=low_gbps * _jitter(rng, 0.05), cpu_activity=0.8,
                )
            )
        elapsed += cycle
        index += 1
    return phases


@register_generator(
    "ramp", WorkloadClass.CPU_MULTI_THREAD, PerformanceMetric.BENCHMARK_SCORE,
    "bandwidth demand ramping linearly between two endpoints",
)
def ramp(
    rng: np.random.Generator,
    duration: float = 1.0,
    steps: int = 8,
    start_gbps: float = 1.0,
    end_gbps: float = 18.0,
) -> List[Phase]:
    """Monotonic ramp: demand sweeps the predictor's whole decision range."""
    _check_duration(duration, steps)
    if steps < 2:
        raise ValueError(f"a ramp needs at least 2 steps, got {steps}")
    if start_gbps < 0 or end_gbps < 0:
        raise ValueError("demands must be non-negative")
    step_d = duration / steps
    phases: List[Phase] = []
    for index in range(steps):
        frac = index / (steps - 1)
        demand = (start_gbps + (end_gbps - start_gbps) * frac) * _jitter(rng, 0.05)
        pressure = bandwidth_pressure(demand)
        phases.append(
            make_phase(
                f"ramp_{index}", step_d,
                compute=max(0.15, 0.75 - 0.55 * demand / CEILING_GBPS),
                memory_latency=0.08 + 0.1 * demand / CEILING_GBPS,
                memory_bandwidth=pressure,
                cpu_gbps=demand, cpu_activity=0.9,
            )
        )
    return phases


@register_generator(
    "idle_heavy", WorkloadClass.BATTERY_LIFE, PerformanceMetric.AVERAGE_POWER,
    "battery-life shape: brief active bursts between deep package-idle spans",
)
def idle_heavy(
    rng: np.random.Generator,
    duration: float = 2.0,
    segments: int = 6,
    active_fraction: float = 0.25,
    active_gbps: float = 3.0,
) -> List[Phase]:
    """Idle-heavy activity: the Sec. 7.3 battery-life residency structure."""
    _check_duration(duration, segments)
    if not 0.0 < active_fraction < 1.0:
        raise ValueError(f"active fraction must be in (0, 1), got {active_fraction}")
    if active_gbps < 0:
        raise ValueError("demands must be non-negative")
    segment = duration / segments
    phases: List[Phase] = []
    for index in range(segments):
        share = min(0.85, max(0.08, active_fraction * _jitter(rng, 0.35)))
        phases.append(
            make_phase(
                f"active_{index}", segment * share,
                compute=0.5, memory_latency=0.12, memory_bandwidth=0.05, io=0.08,
                cpu_gbps=active_gbps * _jitter(rng), io_gbps=0.4,
                cpu_activity=0.7, io_activity=0.3, active_cores=1,
            )
        )
        phases.append(
            make_phase(
                f"idle_{index}", segment * (1.0 - share),
                compute=0.08, io=0.05,
                cpu_gbps=0.2, io_gbps=0.3 * _jitter(rng, 0.3),
                cpu_activity=0.1, io_activity=0.15, active_cores=1,
                residency=CStateResidency(DEEP_IDLE_RESIDENCY),
            )
        )
    return phases


@register_generator(
    "memory_thrash", WorkloadClass.CPU_MULTI_THREAD, PerformanceMetric.BENCHMARK_SCORE,
    "sustained near-ceiling bandwidth demand, latency- and bandwidth-bound",
)
def memory_thrash(
    rng: np.random.Generator,
    duration: float = 1.0,
    segments: int = 6,
    demand_gbps: float = 20.0,
) -> List[Phase]:
    """Memory thrash: the anti-SysScale adversary (never safe to scale down)."""
    _check_duration(duration, segments)
    if demand_gbps < 0:
        raise ValueError("demands must be non-negative")
    segment = duration / segments
    phases: List[Phase] = []
    for index in range(segments):
        demand = demand_gbps * _jitter(rng, 0.1)
        phases.append(
            make_phase(
                f"thrash_{index}", segment,
                compute=0.15, memory_latency=0.3,
                memory_bandwidth=max(0.35, bandwidth_pressure(demand)),
                cpu_gbps=demand, cpu_activity=0.98,
            )
        )
    return phases


@register_generator(
    "graphics_interference", WorkloadClass.GRAPHICS, PerformanceMetric.FRAMES_PER_SECOND,
    "render-bound frames with CPU bursts competing for memory bandwidth",
)
def graphics_interference(
    rng: np.random.Generator,
    duration: float = 1.0,
    segments: int = 5,
    gfx_gbps: float = 9.0,
    cpu_gbps: float = 5.0,
) -> List[Phase]:
    """Graphics + CPU co-interference: who wins the bandwidth predictor?"""
    _check_duration(duration, segments)
    if gfx_gbps < 0 or cpu_gbps < 0:
        raise ValueError("demands must be non-negative")
    segment = duration / segments
    phases: List[Phase] = []
    for index in range(segments):
        gfx_demand = gfx_gbps * _jitter(rng)
        cpu_demand = cpu_gbps * _jitter(rng)
        phases.append(
            make_phase(
                f"render_{index}", segment * 0.6,
                gfx=0.6, compute=0.12, memory_latency=0.06,
                memory_bandwidth=bandwidth_pressure(gfx_demand + 1.0),
                cpu_gbps=1.0, gfx_gbps=gfx_demand,
                cpu_activity=0.4, gfx_activity=0.95,
            )
        )
        phases.append(
            make_phase(
                f"contend_{index}", segment * 0.4,
                gfx=0.35, compute=0.3, memory_latency=0.1,
                memory_bandwidth=bandwidth_pressure(gfx_demand + cpu_demand),
                cpu_gbps=cpu_demand, gfx_gbps=gfx_demand * 0.8,
                cpu_activity=0.85, gfx_activity=0.8,
            )
        )
    return phases


@register_generator(
    "io_streaming", WorkloadClass.BATTERY_LIFE, PerformanceMetric.AVERAGE_POWER,
    "steady IO-agent streaming (camera/display-like) with a modest CPU load",
)
def io_streaming(
    rng: np.random.Generator,
    duration: float = 1.5,
    segments: int = 5,
    stream_gbps: float = 4.0,
    cpu_gbps: float = 1.0,
) -> List[Phase]:
    """IO streaming: constant isochronous demand the predictor must respect."""
    _check_duration(duration, segments)
    if stream_gbps < 0 or cpu_gbps < 0:
        raise ValueError("demands must be non-negative")
    segment = duration / segments
    phases: List[Phase] = []
    for index in range(segments):
        spike = rng.random() < 0.3
        io_demand = stream_gbps * (_jitter(rng, 0.05) + (0.6 if spike else 0.0))
        phases.append(
            make_phase(
                f"stream_{index}", segment,
                compute=0.3, memory_latency=0.06,
                memory_bandwidth=bandwidth_pressure(io_demand + cpu_gbps),
                io=0.18,
                cpu_gbps=cpu_gbps * _jitter(rng, 0.3), io_gbps=io_demand,
                cpu_activity=0.5, io_activity=0.8, active_cores=1,
            )
        )
    return phases


# ---------------------------------------------------------------------------
# Composite generators (built with repro.scenarios.compose)
# ---------------------------------------------------------------------------


@register_generator(
    "burst_then_idle", WorkloadClass.CPU_MULTI_THREAD, PerformanceMetric.BENCHMARK_SCORE,
    "a bursty working span followed by an idle-heavy tail (concat)",
)
def burst_then_idle(
    rng: np.random.Generator,
    duration: float = 2.0,
    burst_share: float = 0.5,
) -> List[Phase]:
    """Race-to-idle: heavy bursts, then a long idle tail."""
    _check_duration(duration, 2)
    if not 0.0 < burst_share < 1.0:
        raise ValueError(f"burst share must be in (0, 1), got {burst_share}")
    head = bursty(rng, duration=duration * burst_share, segments=4)
    tail = idle_heavy(rng, duration=duration * (1.0 - burst_share), segments=3)
    return list(compose.concat(head, tail))


@register_generator(
    "sawtooth", WorkloadClass.CPU_MULTI_THREAD, PerformanceMetric.BENCHMARK_SCORE,
    "a demand ramp repeated tooth after tooth (repeat)",
)
def sawtooth(
    rng: np.random.Generator,
    duration: float = 1.5,
    teeth: int = 3,
    low_gbps: float = 1.0,
    high_gbps: float = 16.0,
) -> List[Phase]:
    """Sawtooth demand: every tooth forces a fresh up/down transition pair."""
    if teeth < 1:
        raise ValueError(f"tooth count must be at least 1, got {teeth}")
    _check_duration(duration, 4 * teeth)
    tooth = ramp(
        rng, duration=duration / teeth, steps=4,
        start_gbps=low_gbps, end_gbps=high_gbps,
    )
    return list(compose.repeat(tooth, teeth))


@register_generator(
    "coresident_gfx_stream", WorkloadClass.GRAPHICS, PerformanceMetric.FRAMES_PER_SECOND,
    "graphics interference time-shared with IO streaming (mix)",
)
def coresident_gfx_stream(
    rng: np.random.Generator,
    duration: float = 1.2,
    weight: float = 0.6,
) -> List[Phase]:
    """Two co-resident apps: a render loop sharing the SoC with a streamer."""
    _check_duration(duration, 2)
    render = graphics_interference(rng, duration=duration, segments=4)
    stream = io_streaming(rng, duration=duration, segments=4)
    return list(compose.mix(render, stream, weight=weight))


@register_generator(
    "interleaved_thrash", WorkloadClass.CPU_MULTI_THREAD, PerformanceMetric.BENCHMARK_SCORE,
    "periodic demand interleaved with memory-thrash slices (interleave)",
)
def interleaved_thrash(
    rng: np.random.Generator,
    duration: float = 1.2,
) -> List[Phase]:
    """Fast alternation between a predictable wave and worst-case thrash."""
    _check_duration(duration, 4)
    wave = periodic(rng, duration=duration / 2, period=duration / 8)
    thrash = memory_thrash(rng, duration=duration / 2, segments=4)
    return list(compose.interleave(wave, thrash))
