"""Composition operators over phase sequences.

Complex scenarios are built from primitive generators with five operators,
all pure functions from phase sequences to a new ``tuple`` of phases:

* :func:`concat` -- run sequences back to back;
* :func:`repeat` -- loop one sequence a fixed number of times;
* :func:`scale_duration` -- stretch or shrink a sequence in time;
* :func:`interleave` -- alternate phases from several sequences (round-robin);
* :func:`mix` -- overlay two sequences on a shared timeline, modelling two
  co-resident applications time-sharing the SoC: bottleneck mixes and
  bandwidth demands blend by a time-share weight.

Operators never mutate their inputs (phases are frozen) and always return
phases that satisfy the :class:`~repro.workloads.trace.Phase` invariants --
composition failures raise ``ValueError`` instead of producing a corrupt trace.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.workloads.trace import Phase

#: Overlay segments shorter than this (seconds) are dropped by :func:`mix`;
#: they are far below the engine tick and only arise from float coincidences.
_MIN_SEGMENT = 1e-9


def _as_phases(sequence: Iterable[Phase], operator: str) -> Tuple[Phase, ...]:
    phases = tuple(sequence)
    if not phases:
        raise ValueError(f"{operator}() needs at least one phase per sequence")
    return phases


def concat(*sequences: Iterable[Phase]) -> Tuple[Phase, ...]:
    """Run ``sequences`` back to back."""
    if not sequences:
        raise ValueError("concat() needs at least one sequence")
    result: List[Phase] = []
    for sequence in sequences:
        result.extend(_as_phases(sequence, "concat"))
    return tuple(result)


def repeat(phases: Iterable[Phase], times: int) -> Tuple[Phase, ...]:
    """Loop ``phases`` ``times`` times, renaming each repetition."""
    phases = _as_phases(phases, "repeat")
    if times < 1:
        raise ValueError(f"repeat count must be at least 1, got {times}")
    if times == 1:
        return phases
    return tuple(
        phase.with_updates(name=f"{phase.name}~r{index}")
        for index in range(times)
        for phase in phases
    )


def scale_duration(phases: Iterable[Phase], factor: float) -> Tuple[Phase, ...]:
    """Stretch (``factor > 1``) or shrink (``factor < 1``) a sequence in time."""
    phases = _as_phases(phases, "scale_duration")
    if factor <= 0:
        raise ValueError(f"duration scale factor must be positive, got {factor}")
    return tuple(phase.scaled_duration(factor) for phase in phases)


def interleave(*sequences: Iterable[Phase]) -> Tuple[Phase, ...]:
    """Alternate phases from ``sequences`` round-robin until all are drained.

    Sequences need not be the same length; exhausted sequences drop out of the
    rotation.  Total duration is the sum of all input durations.
    """
    if len(sequences) < 2:
        raise ValueError("interleave() needs at least two sequences")
    pools = [list(_as_phases(sequence, "interleave")) for sequence in sequences]
    result: List[Phase] = []
    cursor = [0] * len(pools)
    while any(cursor[i] < len(pool) for i, pool in enumerate(pools)):
        for i, pool in enumerate(pools):
            if cursor[i] < len(pool):
                result.append(pool[cursor[i]])
                cursor[i] += 1
    return tuple(result)


def _phase_at(phases: Sequence[Phase], time: float) -> Phase:
    elapsed = 0.0
    for phase in phases:
        if time < elapsed + phase.duration:
            return phase
        elapsed += phase.duration
    return phases[-1]


def mix(
    a: Iterable[Phase],
    b: Iterable[Phase],
    weight: float = 0.5,
) -> Tuple[Phase, ...]:
    """Overlay two sequences on one timeline: two co-resident applications.

    ``weight`` is the time share of ``a`` (``1.0`` reduces to pure ``a``).
    The overlay is cut at every phase boundary of either input (up to the
    shorter total duration); in each segment the bottleneck fractions and the
    per-requester bandwidth demands blend ``weight * a + (1 - weight) * b``
    (fractions still sum to 1).
    """
    a = _as_phases(a, "mix")
    b = _as_phases(b, "mix")
    if not 0.0 <= weight <= 1.0:
        raise ValueError(f"mix weight must be in [0, 1], got {weight}")
    total = min(sum(p.duration for p in a), sum(p.duration for p in b))

    boundaries = {0.0, total}
    for phases in (a, b):
        elapsed = 0.0
        for phase in phases:
            elapsed += phase.duration
            if elapsed < total:
                boundaries.add(elapsed)
    cuts = sorted(boundaries)

    result: List[Phase] = []
    for start, end in zip(cuts, cuts[1:]):
        if end - start <= _MIN_SEGMENT:
            continue
        midpoint = (start + end) / 2.0
        pa = _phase_at(a, midpoint)
        pb = _phase_at(b, midpoint)

        def blend(x: float, y: float) -> float:
            return weight * x + (1.0 - weight) * y

        fractions = [
            blend(x, y) for x, y in zip(pa.fraction_vector(), pb.fraction_vector())
        ]
        norm = sum(fractions)
        fractions = [f / norm for f in fractions]
        result.append(
            Phase(
                name=f"mix({pa.name}+{pb.name})",
                duration=end - start,
                compute_fraction=fractions[0],
                gfx_fraction=fractions[1],
                memory_latency_fraction=fractions[2],
                memory_bandwidth_fraction=fractions[3],
                io_fraction=fractions[4],
                other_fraction=fractions[5],
                cpu_bandwidth_demand=blend(pa.cpu_bandwidth_demand, pb.cpu_bandwidth_demand),
                gfx_bandwidth_demand=blend(pa.gfx_bandwidth_demand, pb.gfx_bandwidth_demand),
                io_bandwidth_demand=blend(pa.io_bandwidth_demand, pb.io_bandwidth_demand),
                cpu_activity=min(1.0, blend(pa.cpu_activity, pb.cpu_activity)),
                gfx_activity=min(1.0, blend(pa.gfx_activity, pb.gfx_activity)),
                io_activity=min(1.0, blend(pa.io_activity, pb.io_activity)),
                active_cores=max(pa.active_cores, pb.active_cores),
                residency=pa.residency if weight >= 0.5 else pb.residency,
            )
        )
    if not result:
        raise ValueError("mix() produced no overlapping segments")
    return tuple(result)
