"""Canonical JSON encoding and content hashing shared across spec layers.

Every declarative spec in the reproduction -- jobs, scenarios, hardware
descriptions -- keys caches and registries on the SHA-256 hash of its canonical
JSON encoding.  The helpers live in this dependency-free module so that both
:mod:`repro.runtime.jobs` (which hashes jobs) and :mod:`repro.hw` (which jobs
themselves depend on) can share one definition without an import cycle.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def canonical_json(data: Any) -> str:
    """The canonical JSON encoding used for hashing (sorted keys, no spaces)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def content_hash(data: Any) -> str:
    """SHA-256 content hash (hex) of ``data``'s canonical JSON encoding."""
    digest = hashlib.sha256(canonical_json(data).encode("utf-8"))
    return digest.hexdigest()
