"""Performance counters used by SysScale's demand prediction (Sec. 4.2).

The paper adds four counters to the SoC and reads them every millisecond:

* ``GFX_LLC_MISSES`` -- LLC misses caused by the graphics engines; indicative of
  the graphics engines' memory-bandwidth requirements.
* ``LLC_Occupancy_Tracer`` -- CPU requests waiting for data from the memory
  controller; indicates whether the cores are bandwidth limited.
* ``LLC_STALLS`` -- stalls due to a busy LLC; indicates main-memory latency limits.
* ``IO_RPQ`` -- IO read-pending-queue occupancy; indicates IO latency limits.

On real hardware these are event counts; here they are synthesised from the phase
characteristics that *cause* those events (graphics bandwidth demand, core traffic
and memory latency, latency-bound fraction, IO demand), so a counter's value has
the same meaning it has in the paper even though the units are model units.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro import config
from repro.memory.mrc import MrcRegisterFile
from repro.perf.latency import MemoryLatencyModel
from repro.soc.domains import SoCState
from repro.workloads.trace import Phase


class CounterName(str, enum.Enum):
    """The four performance counters of Sec. 4.2."""

    GFX_LLC_MISSES = "GFX_LLC_MISSES"
    LLC_OCCUPANCY_TRACER = "LLC_Occupancy_Tracer"
    LLC_STALLS = "LLC_STALLS"
    IO_RPQ = "IO_RPQ"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Cache-line size used to convert bandwidth into miss counts.
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class CounterSample:
    """One 1 ms sample of the four counters (Sec. 4.3 samples every 1 ms)."""

    values: Mapping[CounterName, float]
    interval: float = config.COUNTER_SAMPLING_INTERVAL

    def __post_init__(self) -> None:
        for name in CounterName:
            if name not in self.values:
                raise ValueError(f"counter sample is missing {name}")
            if self.values[name] < 0:
                raise ValueError(f"counter {name} must be non-negative")
        if self.interval <= 0:
            raise ValueError("sample interval must be positive")

    def __getitem__(self, name: CounterName) -> float:
        return self.values[name]

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view keyed by counter name."""
        return {str(name): value for name, value in self.values.items()}

    @staticmethod
    def average(samples: Iterable["CounterSample"]) -> "CounterSample":
        """Average a set of samples counter-by-counter (Sec. 4.3).

        The PMU "samples the performance counters and CSRs multiple times in an
        evaluation interval and uses the average value of each counter".
        """
        samples = list(samples)
        if not samples:
            raise ValueError("cannot average zero samples")
        averaged = {
            name: sum(sample[name] for sample in samples) / len(samples)
            for name in CounterName
        }
        return CounterSample(values=averaged, interval=samples[0].interval)

    @staticmethod
    def from_sums(
        names: Sequence[CounterName],
        sums: Tuple[float, ...],
        count: int,
        interval: float,
    ) -> "CounterSample":
        """Average from per-counter running sums over ``count`` samples.

        The segment-stepping engine accumulates one running sum per counter
        instead of a per-interval ``List[CounterSample]``; because the sums
        perform the same ordered additions :meth:`average` would (``sum`` of a
        sample list is a left fold starting at zero), ``from_sums`` is
        bit-identical to averaging the materialized samples.
        """
        if count <= 0:
            raise ValueError("cannot average zero samples")
        return CounterSample(
            values={name: total / count for name, total in zip(names, sums)},
            interval=interval,
        )


@dataclass
class PerformanceCounterUnit:
    """Synthesises per-millisecond counter samples from phase characteristics."""

    latency_model: MemoryLatencyModel
    sampling_interval: float = config.COUNTER_SAMPLING_INTERVAL

    def __post_init__(self) -> None:
        if self.sampling_interval <= 0:
            raise ValueError("sampling interval must be positive")

    def sample(
        self,
        phase: Phase,
        state: SoCState,
        mrc: Optional[MrcRegisterFile] = None,
    ) -> CounterSample:
        """Produce one counter sample for ``phase`` running under ``state``.

        * ``GFX_LLC_MISSES``: graphics bandwidth demand converted to line misses
          per sampling interval.
        * ``LLC_Occupancy_Tracer``: outstanding CPU requests, from Little's law
          (traffic rate x loaded memory latency).
        * ``LLC_STALLS``: stall time per interval (microseconds), proportional to
          the phase's memory-latency-bound fraction and the current loaded latency.
        * ``IO_RPQ``: outstanding IO requests, from the IO agents' demand and the
          loaded latency, weighted by how IO-bound the phase is.
        """
        demand = phase.memory_bandwidth_demand
        # Counters are normalised to the reference (high) operating point so the
        # demand predictor sees workload characteristics, not the configuration it
        # happens to be running at; the PMU firmware performs the equivalent
        # frequency normalisation when it reads the raw event counts.
        latency = self.latency_model.reference_latency(demand)
        del state, mrc

        gfx_misses = (
            phase.gfx_bandwidth_demand * self.sampling_interval / CACHE_LINE_BYTES
        )
        cpu_outstanding = (phase.cpu_bandwidth_demand / CACHE_LINE_BYTES) * latency
        # Stall time per sampling interval, expressed in microseconds so the value
        # is independent of the CPU clock the compute-domain PBM happens to grant.
        stall_time_us = (
            phase.memory_latency_fraction
            * min(1.0, latency / 100e-9)
            * (self.sampling_interval / config.US)
        )
        # IO_RPQ reflects *latency-sensitive* IO reads waiting on memory.  Bulk
        # isochronous streaming (display scanout, camera frames) is deeply
        # buffered and latency tolerant, so it contributes only weakly; the
        # dominant term is how IO-latency-bound the phase actually is.
        io_outstanding = (
            phase.io_fraction * 16.0
            + (phase.io_bandwidth_demand / CACHE_LINE_BYTES) * latency * 0.05
        )

        return CounterSample(
            values={
                CounterName.GFX_LLC_MISSES: gfx_misses,
                CounterName.LLC_OCCUPANCY_TRACER: cpu_outstanding,
                CounterName.LLC_STALLS: stall_time_us,
                CounterName.IO_RPQ: io_outstanding,
            },
            interval=self.sampling_interval,
        )

    def sample_interval_average(
        self,
        phase: Phase,
        state: SoCState,
        samples: int,
        mrc: Optional[MrcRegisterFile] = None,
    ) -> CounterSample:
        """Average of ``samples`` consecutive samples within one evaluation interval.

        Within a single phase the synthesised counters are stationary, so the
        average equals one sample; the method exists so callers mirror the PMU's
        sampling procedure and so phase boundaries inside an interval average
        correctly when the caller mixes phases.
        """
        if samples <= 0:
            raise ValueError("sample count must be positive")
        return CounterSample.average(
            self.sample(phase, state, mrc) for _ in range(samples)
        )
