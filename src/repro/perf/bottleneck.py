"""Bottleneck decomposition of workloads (Fig. 2(b)).

Fig. 2(b) of the paper plots, for each motivation workload, "what fraction of the
performance is bound by main memory latency, main memory bandwidth or non-main
memory related events".  This module computes that decomposition from a workload
trace: the duration-weighted average of each phase's bottleneck mix, with
everything that is not main-memory folded into the *non-memory* bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.workloads.trace import WorkloadTrace


@dataclass(frozen=True)
class BottleneckBreakdown:
    """Duration-weighted bottleneck fractions of a workload."""

    workload: str
    memory_latency_bound: float
    memory_bandwidth_bound: float
    non_memory_bound: float

    def __post_init__(self) -> None:
        total = (
            self.memory_latency_bound
            + self.memory_bandwidth_bound
            + self.non_memory_bound
        )
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"bottleneck fractions must sum to 1, got {total}")
        for name in ("memory_latency_bound", "memory_bandwidth_bound", "non_memory_bound"):
            if getattr(self, name) < -1e-12:
                raise ValueError(f"{name} must be non-negative")

    @property
    def memory_bound(self) -> float:
        """Total main-memory-bound fraction (latency + bandwidth)."""
        return self.memory_latency_bound + self.memory_bandwidth_bound

    @property
    def dominant(self) -> str:
        """Name of the dominant bucket."""
        buckets = {
            "memory_latency": self.memory_latency_bound,
            "memory_bandwidth": self.memory_bandwidth_bound,
            "non_memory": self.non_memory_bound,
        }
        return max(buckets, key=buckets.get)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view."""
        return {
            "workload": self.workload,
            "memory_latency_bound": self.memory_latency_bound,
            "memory_bandwidth_bound": self.memory_bandwidth_bound,
            "non_memory_bound": self.non_memory_bound,
        }


def analyze_bottlenecks(trace: WorkloadTrace) -> BottleneckBreakdown:
    """Compute the Fig. 2(b)-style bottleneck decomposition of ``trace``."""
    total = trace.total_duration
    latency = sum(p.memory_latency_fraction * p.duration for p in trace.phases) / total
    bandwidth = sum(p.memory_bandwidth_fraction * p.duration for p in trace.phases) / total
    non_memory = max(0.0, 1.0 - latency - bandwidth)
    return BottleneckBreakdown(
        workload=trace.name,
        memory_latency_bound=latency,
        memory_bandwidth_bound=bandwidth,
        non_memory_bound=non_memory,
    )
