"""Analytic phase performance model.

The model converts a workload phase (characterised at the reference configuration)
and an arbitrary SoC state into a *slowdown factor*: how much longer the phase
takes under that state than it did at the reference.  The decomposition follows
the bottleneck mix of the phase (DESIGN.md Sec. 4):

``slowdown = f_compute * (f_cpu_ref / f_cpu)
           + f_gfx     * (f_gfx_ref / f_gfx)
           + f_lat     * (latency(state) / latency_ref)
           + f_bw      * max(1, demand / bandwidth_available(state))
           + f_io      * (f_ic_ref / f_ic) ** io_sensitivity
           + f_other``

Each term reproduces one of the effects the paper describes: compute-bound phases
scale with core frequency (Sec. 7.1), memory-latency-bound phases suffer when the
memory subsystem slows down (cactusADM in Fig. 2), bandwidth-bound phases suffer
when the achievable bandwidth drops below their demand (lbm), IO-bound phases react
to the interconnect clock, and the ``other`` fraction is insensitive to all clocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import config
from repro.memory.mrc import MrcRegisterFile
from repro.perf.latency import MemoryLatencyModel
from repro.soc.domains import SoCState
from repro.workloads.trace import Phase


@dataclass(frozen=True)
class PhaseSlowdown:
    """The per-term breakdown of a phase's slowdown under some SoC state."""

    compute_term: float
    gfx_term: float
    latency_term: float
    bandwidth_term: float
    io_term: float
    other_term: float
    achieved_bandwidth: float

    @property
    def total(self) -> float:
        """Total slowdown factor (1.0 = same speed as the reference)."""
        return (
            self.compute_term
            + self.gfx_term
            + self.latency_term
            + self.bandwidth_term
            + self.io_term
            + self.other_term
        )

    def as_dict(self) -> dict:
        """Flat dictionary view including the total."""
        return {
            "compute": self.compute_term,
            "gfx": self.gfx_term,
            "latency": self.latency_term,
            "bandwidth": self.bandwidth_term,
            "io": self.io_term,
            "other": self.other_term,
            "total": self.total,
            "achieved_bandwidth_gbps": self.achieved_bandwidth / config.GBPS,
        }


@dataclass
class PhasePerformanceModel:
    """Maps (phase, SoC state) to execution-time slowdown and achieved bandwidth."""

    latency_model: MemoryLatencyModel
    reference_cpu_frequency: float = config.SKYLAKE_CPU_BASE_FREQUENCY
    reference_gfx_frequency: float = config.SKYLAKE_GFX_BASE_FREQUENCY
    reference_interconnect_frequency: float = config.IO_INTERCONNECT_HIGH_FREQUENCY
    io_sensitivity: float = 0.15

    def __post_init__(self) -> None:
        for name in (
            "reference_cpu_frequency",
            "reference_gfx_frequency",
            "reference_interconnect_frequency",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 <= self.io_sensitivity <= 1.0:
            raise ValueError("io_sensitivity must be in [0, 1]")

    # ------------------------------------------------------------------
    # Slowdown
    # ------------------------------------------------------------------
    def slowdown(
        self,
        phase: Phase,
        state: SoCState,
        mrc: Optional[MrcRegisterFile] = None,
    ) -> PhaseSlowdown:
        """Slowdown of ``phase`` under ``state`` relative to the reference configuration."""
        cpu_ratio = self.reference_cpu_frequency / state.cpu_frequency
        gfx_ratio = self.reference_gfx_frequency / state.gfx_frequency
        ic_ratio = self.reference_interconnect_frequency / state.interconnect_frequency

        demand = phase.memory_bandwidth_demand
        latency_ratio = self.latency_model.latency_ratio(state, demand, mrc)
        available = self.latency_model.available_bandwidth(state, mrc)
        reference_available = self.latency_model.reference_bandwidth()

        # At the reference configuration the bandwidth term is max(1, demand/ref);
        # normalising by it keeps the reference slowdown at exactly 1.0 even for
        # saturating workloads (lbm runs at the ceiling in both configurations).
        reference_bw_term = max(1.0, demand / reference_available) if reference_available else 1.0
        bw_term = max(1.0, demand / available) if available > 0 else float("inf")
        bw_ratio = bw_term / reference_bw_term

        compute_term = phase.compute_fraction * cpu_ratio
        gfx_term = phase.gfx_fraction * gfx_ratio
        latency_term = phase.memory_latency_fraction * latency_ratio
        bandwidth_term = phase.memory_bandwidth_fraction * bw_ratio
        io_term = phase.io_fraction * (ic_ratio ** self.io_sensitivity)
        other_term = phase.other_fraction

        total = compute_term + gfx_term + latency_term + bandwidth_term + io_term + other_term
        achieved = min(demand / total if total > 0 else demand, available)

        return PhaseSlowdown(
            compute_term=compute_term,
            gfx_term=gfx_term,
            latency_term=latency_term,
            bandwidth_term=bandwidth_term,
            io_term=io_term,
            other_term=other_term,
            achieved_bandwidth=achieved,
        )

    def execution_time(
        self,
        phase: Phase,
        state: SoCState,
        mrc: Optional[MrcRegisterFile] = None,
    ) -> float:
        """Execution time (seconds) of ``phase`` under ``state``."""
        return phase.duration * self.slowdown(phase, state, mrc).total

    def speedup_over_reference(
        self,
        phase: Phase,
        state: SoCState,
        mrc: Optional[MrcRegisterFile] = None,
    ) -> float:
        """Speedup of ``phase`` under ``state`` relative to the reference (>1 = faster)."""
        total = self.slowdown(phase, state, mrc).total
        if total <= 0:
            raise ValueError("slowdown must be positive")
        return 1.0 / total
