"""Memory access latency as a function of the SoC configuration.

Sec. 2.4 lists the three performance effects of reducing the memory subsystem
frequency: longer data bursts, slower memory controller and DRAM interface, and
larger queueing delays.  :class:`MemoryLatencyModel` wraps the memory-controller
model and exposes the quantity the phase performance model needs: the ratio of
average loaded memory latency under an arbitrary configuration to the latency at
the reference (high) configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import config
from repro.memory.controller import MemoryControllerModel
from repro.memory.mrc import MrcRegisterFile
from repro.soc.domains import SoCState


@dataclass
class MemoryLatencyModel:
    """Loaded memory latency and latency ratios relative to a reference state."""

    controller: MemoryControllerModel
    reference_dram_frequency: float = config.LPDDR3_FREQUENCY_BINS[0]
    reference_interconnect_frequency: float = config.IO_INTERCONNECT_HIGH_FREQUENCY

    def __post_init__(self) -> None:
        if self.reference_dram_frequency <= 0 or self.reference_interconnect_frequency <= 0:
            raise ValueError("reference frequencies must be positive")

    def latency(
        self,
        state: SoCState,
        demand_bandwidth: float,
        mrc: Optional[MrcRegisterFile] = None,
    ) -> float:
        """Average loaded memory latency (seconds) under ``state``."""
        return self.controller.loaded_latency(
            demand_bandwidth=demand_bandwidth,
            dram_frequency=state.dram_frequency,
            interconnect_frequency=state.interconnect_frequency,
            mrc=mrc,
        )

    def reference_latency(self, demand_bandwidth: float) -> float:
        """Average loaded latency (seconds) at the reference (high) configuration.

        The reference latency always assumes optimized MRC values, because the
        baseline system boots with MRC trained for its single (highest) frequency.
        """
        return self.controller.loaded_latency(
            demand_bandwidth=demand_bandwidth,
            dram_frequency=self.reference_dram_frequency,
            interconnect_frequency=self.reference_interconnect_frequency,
            mrc=None,
        )

    def latency_ratio(
        self,
        state: SoCState,
        demand_bandwidth: float,
        mrc: Optional[MrcRegisterFile] = None,
    ) -> float:
        """Latency under ``state`` divided by the reference latency (>= ~1)."""
        reference = self.reference_latency(demand_bandwidth)
        if reference <= 0:
            raise ValueError("reference latency must be positive")
        return self.latency(state, demand_bandwidth, mrc) / reference

    def available_bandwidth(
        self, state: SoCState, mrc: Optional[MrcRegisterFile] = None
    ) -> float:
        """Achievable memory bandwidth (bytes/s) under ``state``."""
        return self.controller.achievable_bandwidth(state.dram_frequency, mrc)

    def reference_bandwidth(self) -> float:
        """Achievable memory bandwidth (bytes/s) at the reference configuration."""
        return self.controller.achievable_bandwidth(self.reference_dram_frequency, None)
