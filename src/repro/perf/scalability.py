"""Performance scalability with frequency.

Footnote 8 of the paper defines performance scalability of a workload with respect
to CPU frequency as "the performance improvement the workload experiences with unit
increase in frequency".  The paper uses it both to explain which SPEC workloads
benefit most from SysScale (Sec. 7.1) and to project the performance of the
MemScale-Redist / CoScale-Redist comparison points from their estimated power
savings (Sec. 6, step 3).

This module provides the two helpers the rest of the code base uses: the
duration-weighted scalability of a trace, and the Amdahl-style speedup obtained
when only the scalable fraction accelerates.
"""

from __future__ import annotations

from repro.workloads.trace import WorkloadTrace


def frequency_scalability(trace: WorkloadTrace, target: str = "cpu") -> float:
    """Duration-weighted performance scalability of ``trace`` with a frequency knob.

    ``target`` selects the knob: ``"cpu"`` for CPU core frequency, ``"gfx"`` for
    graphics frequency.  The result is in [0, 1]: 1 means performance scales 1:1
    with frequency, 0 means frequency changes have no effect.
    """
    target = target.lower()
    if target == "cpu":
        return trace.cpu_frequency_scalability
    if target == "gfx":
        return trace.gfx_frequency_scalability
    raise ValueError(f"unknown scalability target {target!r}; use 'cpu' or 'gfx'")


def amdahl_speedup(scalability: float, frequency_ratio: float) -> float:
    """Speedup when only the ``scalability`` fraction of time scales with frequency.

    ``frequency_ratio`` is new frequency / old frequency.  The non-scalable fraction
    of execution time is unchanged, the scalable fraction shrinks by the ratio:

    ``speedup = 1 / ((1 - s) + s / ratio)``
    """
    if not 0.0 <= scalability <= 1.0:
        raise ValueError("scalability must be in [0, 1]")
    if frequency_ratio <= 0:
        raise ValueError("frequency ratio must be positive")
    denominator = (1.0 - scalability) + scalability / frequency_ratio
    if denominator <= 0:
        raise ValueError("invalid speedup denominator")
    return 1.0 / denominator


def projected_improvement(scalability: float, frequency_ratio: float) -> float:
    """Fractional performance improvement (Amdahl speedup minus one)."""
    return amdahl_speedup(scalability, frequency_ratio) - 1.0
