"""Performance modelling: counters, latency, phase performance, bottlenecks.

This package turns an SoC configuration and a workload phase into execution-time
and throughput estimates, and synthesises the hardware performance counters the
SysScale demand predictor reads (Sec. 4.2): ``GFX_LLC_MISSES``,
``LLC_Occupancy_Tracer``, ``LLC_STALLS``, and ``IO_RPQ``.
"""

from repro.perf.counters import CounterName, CounterSample, PerformanceCounterUnit
from repro.perf.latency import MemoryLatencyModel
from repro.perf.model import PhasePerformanceModel, PhaseSlowdown
from repro.perf.bottleneck import BottleneckBreakdown, analyze_bottlenecks
from repro.perf.scalability import frequency_scalability, amdahl_speedup

__all__ = [
    "CounterName",
    "CounterSample",
    "PerformanceCounterUnit",
    "MemoryLatencyModel",
    "PhasePerformanceModel",
    "PhaseSlowdown",
    "BottleneckBreakdown",
    "analyze_bottlenecks",
    "frequency_scalability",
    "amdahl_speedup",
]
