"""Running the rule set over a file tree and reporting.

:func:`lint_paths` is the single entry point the CLI, the CI gate, the
``tools/lint_prints.py`` shim, and the tests all share.  Directory walking
skips caches, hidden directories, and ``tests/fixtures`` (the lint fixtures
*are* deliberate violations); explicitly named files are always linted,
which is how the fixtures get exercised on purpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.analysis.lint.findings import Baseline, Finding, suppressed_rules
from repro.analysis.lint.rules import RULES, LintRule
from repro.analysis.lint.source import parse_source

__all__ = ["DEFAULT_ROOTS", "LintReport", "iter_python_files", "lint_paths"]

#: What a bare ``python -m repro lint`` scans.
DEFAULT_ROOTS = ("src/repro", "tests", "tools", "examples")

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}

#: Subtrees excluded from directory walks: lint fixtures are intentional
#: violations (linting them directly by explicit path still works).
_SKIP_SUBTREES = ("tests/fixtures",)


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)  # unreadable/syntax errors
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "errors": list(self.errors),
            "findings": [finding.to_dict() for finding in self.findings],
        }


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(
    paths: Sequence[Path], repo_root: Path
) -> Iterator[Path]:
    """Python files under ``paths``: directories walked (with exclusions),
    explicit files yielded unconditionally."""
    for path in paths:
        if path.is_file():
            yield path
            continue
        if not path.is_dir():
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.parts
            if any(part in _SKIP_DIRS or part.startswith(".") for part in parts):
                continue
            rel = _relative(candidate, repo_root)
            if any(
                rel == subtree or rel.startswith(subtree + "/")
                for subtree in _SKIP_SUBTREES
            ):
                continue
            yield candidate


def lint_paths(
    paths: Optional[Sequence[str]] = None,
    *,
    repo_root: Optional[Path] = None,
    rules: Optional[Iterable[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint ``paths`` (default: :data:`DEFAULT_ROOTS` that exist).

    ``rules`` restricts to a subset of rule names; ``baseline`` absorbs
    known findings (the report counts them as ``baselined``).
    """
    root = (repo_root or Path.cwd()).resolve()
    if paths:
        targets = [Path(p) if Path(p).is_absolute() else root / p for p in paths]
    else:
        targets = [root / p for p in DEFAULT_ROOTS if (root / p).exists()]

    if rules is None:
        active: List[LintRule] = list(RULES.values())
    else:
        unknown = sorted(set(rules) - set(RULES))
        if unknown:
            raise KeyError(f"unknown lint rule(s): {', '.join(unknown)}")
        active = [RULES[name] for name in rules]

    report = LintReport()
    raw: List[Finding] = []
    for file_path in iter_python_files(targets, root):
        rel = _relative(file_path, root)
        module, error = parse_source(file_path, rel)
        if module is None:
            report.errors.append(error or f"{rel}: unparseable")
            continue
        report.files_scanned += 1
        for rule in active:
            if not rule.applies(module):
                continue
            for lineno, message in rule.check(module):
                if rule.name in suppressed_rules(module.line(lineno)):
                    report.suppressed += 1
                    continue
                raw.append(
                    Finding(
                        rule=rule.name,
                        severity=rule.severity,
                        path=rel,
                        line=lineno,
                        message=message,
                    )
                )

    raw.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    if baseline is not None:
        fresh = baseline.filter_new(raw)
        report.baselined = len(raw) - len(fresh)
        report.findings = fresh
    else:
        report.findings = raw
    return report
