"""The unit of linting: one parsed source file plus its repro identity.

Rules need three things about a file: its AST, its physical lines (for
inline suppressions), and -- for the layer- and scope-aware rules -- which
``repro.*`` module it is.  The module name is derived from the path for
files under ``src/repro``; any file can override it with a

    # reprolint: module=repro.sim.something

pragma, which is how the test fixtures impersonate in-tree modules so the
scoped rules exercise against tiny files instead of the real tree.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import List, Optional, Tuple

__all__ = ["SourceModule", "parse_source"]

_MODULE_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*module=([A-Za-z0-9_.]+)")


class SourceModule:
    """One file under lint: path, text, AST, and resolved module name."""

    def __init__(
        self,
        path: Path,
        rel_path: str,
        text: str,
        tree: ast.Module,
        module: Optional[str],
    ) -> None:
        self.path = path
        self.rel_path = rel_path  # repo-relative, posix separators
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree = tree
        self.module = module  # dotted repro module name, or None

    def line(self, lineno: int) -> str:
        """The physical source line (1-based; empty string out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def _module_from_path(rel_path: str) -> Optional[str]:
    """Dotted module name for files under ``src/repro``; None otherwise."""
    parts = Path(rel_path).parts
    if len(parts) < 2 or parts[0] != "src":
        return None
    dotted = list(parts[1:])
    if not dotted[-1].endswith(".py"):
        return None
    dotted[-1] = dotted[-1][: -len(".py")]
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted) if dotted else None


def parse_source(
    path: Path, rel_path: str
) -> Tuple[Optional["SourceModule"], Optional[str]]:
    """Parse ``path``; returns ``(module, error)`` -- exactly one is set."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return None, f"{rel_path}: unreadable: {exc}"
    try:
        tree = ast.parse(text, filename=rel_path)
    except SyntaxError as exc:
        return None, f"{rel_path}: syntax error: {exc.msg} (line {exc.lineno})"

    module = _module_from_path(rel_path)
    pragma = _MODULE_PRAGMA_RE.search(text)
    if pragma:
        module = pragma.group(1)
    return SourceModule(path, rel_path, text, tree, module), None
