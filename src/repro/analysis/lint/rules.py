"""The rule set: the reproduction's contracts, as AST checks.

Every rule here is grounded in a documented repo contract (see README
"Guarantees"): bit-identical results across serial/parallel/cold/warm
execution, stable content hashes, telemetry that cannot perturb results,
and structured console output.  Each rule carries its severity and the
rationale the ``--explain`` command and the README table surface.

Rules are deliberately scope-aware: ``determinism`` only patrols the
modules whose outputs are hashed or cached, ``telemetry-inert`` only
patrols ``repro.obs``, and so on.  A rule that fires everywhere teaches
people to sprinkle suppressions; a rule that fires exactly where the
contract applies stays credible.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.layers import layer_of, layering_violation
from repro.analysis.lint.source import SourceModule

__all__ = ["LintRule", "RULES"]


@dataclass(frozen=True)
class LintRule:
    """One named check: scope predicate + AST visitor + rationale."""

    name: str
    severity: str  # "error" | "warning"
    summary: str  # one line, for --list-rules and the README table
    rationale: str  # the contract it enforces, for --explain
    applies: Callable[[SourceModule], bool]
    check: Callable[[SourceModule], Iterator[Tuple[int, str]]]


def _root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` under an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


# ---------------------------------------------------------------------------
# determinism: no wall clocks, global RNGs, or environment reads where
# results are computed and hashed.
# ---------------------------------------------------------------------------

#: numpy.random attributes that are explicitly seeded constructions.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


def _deterministic_scope(module: SourceModule) -> bool:
    """Modules whose outputs are hashed, cached, or compared bit-for-bit.

    Timing and environment access belong in ``repro.obs``, the bench
    harness, and the executors -- never where results come from.
    """
    name = module.module
    if name is None:
        return False
    if name == "repro.runtime.jobs":
        return True
    if name == "repro.scenarios" or name.startswith("repro.scenarios."):
        return True
    return layer_of(name) in {"base", "model"}


class _ImportTable:
    """Names bound to the nondeterminism-relevant stdlib/numpy modules."""

    def __init__(self, tree: ast.Module) -> None:
        self.time_modules: Set[str] = set()
        self.time_functions: Set[str] = set()
        self.datetime_roots: Set[str] = set()  # module or class aliases
        self.random_modules: Set[str] = set()
        self.random_functions: Set[str] = set()
        self.numpy_modules: Set[str] = set()
        self.numpy_random_modules: Set[str] = set()
        self.os_modules: Set[str] = set()
        self.os_environ_names: Set[str] = set()
        self.os_getenv_names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "time":
                        self.time_modules.add(bound)
                    elif alias.name == "datetime":
                        self.datetime_roots.add(bound)
                    elif alias.name == "random":
                        self.random_modules.add(bound)
                    elif alias.name == "numpy":
                        self.numpy_modules.add(bound)
                    elif alias.name == "numpy.random":
                        self.numpy_random_modules.add(alias.asname or "numpy")
                    elif alias.name == "os":
                        self.os_modules.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if node.module == "time":
                        self.time_functions.add(bound)
                    elif node.module == "datetime":
                        self.datetime_roots.add(bound)
                    elif node.module == "random":
                        self.random_functions.add(bound)
                    elif node.module == "numpy" and alias.name == "random":
                        self.numpy_random_modules.add(bound)
                    elif node.module == "os" and alias.name == "environ":
                        self.os_environ_names.add(bound)
                    elif node.module == "os" and alias.name == "getenv":
                        self.os_getenv_names.add(bound)


def _check_determinism(module: SourceModule) -> Iterator[Tuple[int, str]]:
    imports = _ImportTable(module.tree)
    seen: Set[Tuple[int, str]] = set()

    def flag(lineno: int, message: str) -> None:
        seen.add((lineno, message))

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in imports.time_functions:
                    flag(node.lineno, f"wall-clock call {func.id}() in deterministic module")
                elif func.id in imports.random_functions:
                    flag(node.lineno, f"global-RNG call {func.id}() in deterministic module")
                elif func.id in imports.os_getenv_names:
                    flag(node.lineno, "os.getenv() read in deterministic module")
            elif isinstance(func, ast.Attribute):
                root = func.value
                if isinstance(root, ast.Name) and root.id in imports.time_modules:
                    flag(node.lineno, f"wall-clock call time.{func.attr}() in deterministic module")
                elif isinstance(root, ast.Name) and root.id in imports.random_modules:
                    if func.attr != "Random":
                        flag(
                            node.lineno,
                            f"global-RNG call random.{func.attr}() in deterministic module",
                        )
                elif (
                    func.attr in {"now", "utcnow", "today"}
                    and _root_name(root) in imports.datetime_roots
                ):
                    flag(node.lineno, f"wall-clock call datetime {func.attr}() in deterministic module")
                elif isinstance(root, ast.Name) and root.id in imports.os_modules:
                    if func.attr == "getenv":
                        flag(node.lineno, "os.getenv() read in deterministic module")
                elif func.attr not in _NP_RANDOM_ALLOWED:
                    # np.random.<dist>(...) draws from the *global* NumPy RNG.
                    if (
                        isinstance(root, ast.Attribute)
                        and root.attr == "random"
                        and isinstance(root.value, ast.Name)
                        and root.value.id in imports.numpy_modules
                    ) or (
                        isinstance(root, ast.Name)
                        and root.id in imports.numpy_random_modules
                    ):
                        flag(
                            node.lineno,
                            f"np.random.{func.attr}() uses the global NumPy RNG; "
                            "use np.random.default_rng(seed)",
                        )
        elif isinstance(node, ast.Attribute):
            if (
                node.attr == "environ"
                and isinstance(node.value, ast.Name)
                and node.value.id in imports.os_modules
            ):
                flag(node.lineno, "os.environ read in deterministic module")
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in imports.os_environ_names:
                flag(node.lineno, "os.environ read in deterministic module")

    yield from sorted(seen)


# ---------------------------------------------------------------------------
# hash-surface: frozen content-hashed specs must serialize every field.
# ---------------------------------------------------------------------------


def _hash_surface_scope(module: SourceModule) -> bool:
    name = module.module
    if name is None:
        return False
    if name == "repro.runtime.jobs":
        return True
    if name == "repro.scenarios" or name.startswith("repro.scenarios."):
        return True
    return layer_of(name) == "model"


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            func = decorator.func
            is_dataclass = (isinstance(func, ast.Name) and func.id == "dataclass") or (
                isinstance(func, ast.Attribute) and func.attr == "dataclass"
            )
            if is_dataclass:
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "frozen"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return True
    return False


def _class_fields(node: ast.ClassDef) -> List[Tuple[str, int]]:
    """Dataclass fields: annotated assignments that are not ClassVars."""
    result: List[Tuple[str, int]] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if "ClassVar" in ast.unparse(stmt.annotation):
                continue
            result.append((stmt.target.id, stmt.lineno))
    return result


def _metadata_fields(node: ast.ClassDef) -> Set[str]:
    """Fields named by a ``METADATA_FIELDS`` ClassVar (hash-exempt)."""
    names: Set[str] = set()
    for stmt in node.body:
        target = None
        value = None
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            target, value = stmt.target.id, stmt.value
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            if isinstance(stmt.targets[0], ast.Name):
                target, value = stmt.targets[0].id, stmt.value
        if target == "METADATA_FIELDS" and isinstance(value, (ast.Tuple, ast.List)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    names.add(element.value)
    return names


def _method(node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _serialized_names(fn: ast.FunctionDef) -> Tuple[Set[str], bool]:
    """(names mentioned by the serializer, uses-generic-fields-iteration)."""
    names: Set[str] = set()
    generic = False
    for node in ast.walk(fn):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
        elif isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                names.add(node.attr)
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name) and func.id == "fields") or (
                isinstance(func, ast.Attribute) and func.attr == "fields"
            ):
                generic = True
            for keyword in node.keywords:
                if keyword.arg is not None:
                    names.add(keyword.arg)
                else:
                    # A ``cls(**data)`` splat forwards every field generically.
                    generic = True
    return names, generic


def _module_has_schema_constant(tree: ast.Module) -> bool:
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id.endswith("SCHEMA_VERSION"):
                return True
    return False


def _check_hash_surface(module: SourceModule) -> Iterator[Tuple[int, str]]:
    has_schema = _module_has_schema_constant(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef) or not _is_frozen_dataclass(node):
            continue
        to_dict = _method(node, "to_dict")
        if to_dict is None:
            continue
        exempt = _metadata_fields(node)
        covered, generic = _serialized_names(to_dict)
        if not generic:
            for field_name, _ in _class_fields(node):
                if field_name in exempt or field_name in covered:
                    continue
                yield (
                    to_dict.lineno,
                    f"{node.name}.to_dict() does not serialize field "
                    f"{field_name!r}; hash-relevant fields must reach the "
                    "payload (or be listed in METADATA_FIELDS)",
                )
        from_dict = _method(node, "from_dict")
        if from_dict is not None:
            restored, generic_from = _serialized_names(from_dict)
            if not generic_from:
                for field_name, _ in _class_fields(node):
                    if field_name in exempt or field_name in restored:
                        continue
                    yield (
                        from_dict.lineno,
                        f"{node.name}.from_dict() does not restore field "
                        f"{field_name!r}; round-tripping would silently drop it",
                    )
        content_hash = _method(node, "content_hash")
        if content_hash is not None and not has_schema:
            yield (
                content_hash.lineno,
                f"{node.name}.content_hash exists but the module defines no "
                "*SCHEMA_VERSION constant; hashed payloads need a version "
                "stamp to evolve",
            )


# ---------------------------------------------------------------------------
# layering: top-level imports must follow the layer DAG.
# ---------------------------------------------------------------------------


def _layering_scope(module: SourceModule) -> bool:
    return module.module is not None and layer_of(module.module) is not None


def _top_level_imports(
    module: SourceModule,
) -> Iterator[Tuple[int, str]]:
    """(line, dotted module) for every module-body import.

    Descends into module-level ``if``/``try`` blocks (TYPE_CHECKING guards,
    optional-dependency probes) but never into functions or classes:
    function-scoped deferred imports are the sanctioned lazy idiom.
    """
    package = module.module or ""
    if not module.rel_path.endswith("__init__.py") and "." in package:
        package = package.rsplit(".", 1)[0]

    def walk(statements: List[ast.stmt]) -> Iterator[Tuple[int, str]]:
        for stmt in statements:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    yield stmt.lineno, alias.name
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.level == 0:
                    base = stmt.module or ""
                else:
                    parts = package.split(".") if package else []
                    if stmt.level - 1 <= len(parts):
                        parts = parts[: len(parts) - (stmt.level - 1)]
                    base = ".".join(parts)
                    if stmt.module:
                        base = f"{base}.{stmt.module}" if base else stmt.module
                if base:
                    # Check the *qualified* names: ``from repro import config``
                    # is an edge to repro.config, not to the app-layer package
                    # __init__ (which every import triggers anyway).
                    for alias in stmt.names:
                        if alias.name == "*":
                            yield stmt.lineno, base
                        else:
                            yield stmt.lineno, f"{base}.{alias.name}"
            elif isinstance(stmt, ast.If):
                yield from walk(stmt.body)
                yield from walk(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                yield from walk(stmt.body)
                for handler in stmt.handlers:
                    yield from walk(handler.body)
                yield from walk(stmt.orelse)
                yield from walk(stmt.finalbody)

    yield from walk(module.tree.body)


def _check_layering(module: SourceModule) -> Iterator[Tuple[int, str]]:
    importer = module.module or ""
    seen: Set[Tuple[int, str]] = set()
    for lineno, imported in _top_level_imports(module):
        message = layering_violation(importer, imported)
        if message is not None:
            # `from repro.sim import engine` reports once, not once for the
            # module and once per alias resolving to the same layer.
            key = (lineno, message)
            if key not in seen:
                seen.add(key)
                yield lineno, message


# ---------------------------------------------------------------------------
# telemetry-inert: obs code must not mutate what it observes.
# ---------------------------------------------------------------------------

_MUTATORS = {
    "append",
    "extend",
    "insert",
    "remove",
    "clear",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "add",
    "discard",
    "sort",
    "reverse",
}


def _telemetry_scope(module: SourceModule) -> bool:
    """The live observation path: repro.obs minus the offline read side.

    ``repro.obs.analysis`` post-processes event files and summaries it
    loaded itself -- there is no live simulation state in reach, so
    parameter mutation there is ordinary data shaping, not a contract risk.
    """
    name = module.module
    if name is None or not (name == "repro.obs" or name.startswith("repro.obs.")):
        return False
    return not name.startswith("repro.obs.analysis")


def _function_params(fn: ast.AST) -> Set[str]:
    args = fn.args  # type: ignore[attr-defined]
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    if names and names[0] in {"self", "cls"}:
        names = names[1:]
    return set(names)


def _check_telemetry_inert(module: SourceModule) -> Iterator[Tuple[int, str]]:
    seen: Set[Tuple[int, str]] = set()
    for fn in ast.walk(module.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = _function_params(fn)
        if not params:
            continue
        for node in ast.walk(fn):
            findings: List[Tuple[int, str]] = []
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root = _root_name(target)
                        if root in params:
                            findings.append(
                                (
                                    node.lineno,
                                    f"obs code mutates observed object {root!r} "
                                    "(assignment through a parameter)",
                                )
                            )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root = _root_name(target)
                        if root in params:
                            findings.append(
                                (
                                    node.lineno,
                                    f"obs code deletes state on observed object {root!r}",
                                )
                            )
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                    root = _root_name(func.value)
                    if root in params:
                        findings.append(
                            (
                                node.lineno,
                                f"obs code calls mutating method .{func.attr}() "
                                f"on observed object {root!r}",
                            )
                        )
                elif isinstance(func, ast.Name) and func.id == "setattr" and node.args:
                    root = _root_name(node.args[0])
                    if root in params:
                        findings.append(
                            (
                                node.lineno,
                                f"obs code setattr()s on observed object {root!r}",
                            )
                        )
            seen.update(findings)
    yield from sorted(seen)


# ---------------------------------------------------------------------------
# console: structured output only -- no bare print / raw stream writes.
# ---------------------------------------------------------------------------

#: Files allowed to touch the raw streams: the Console implementation itself.
_CONSOLE_WHITELIST = {"src/repro/obs/logging.py"}


def _console_scope(module: SourceModule) -> bool:
    return module.rel_path not in _CONSOLE_WHITELIST


def _check_console(module: SourceModule) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            yield node.lineno, "bare print(); route output through repro.obs.logging.Console"
        elif isinstance(func, ast.Attribute) and func.attr == "write":
            value = func.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr in {"stdout", "stderr"}
                and isinstance(value.value, ast.Name)
                and value.value.id == "sys"
            ):
                yield (
                    node.lineno,
                    f"raw sys.{value.attr}.write(); route output through "
                    "repro.obs.logging.Console",
                )


# ---------------------------------------------------------------------------
# executor-safety: no fork-unsafe state created at module level in modules
# worker processes import.
# ---------------------------------------------------------------------------

#: Bare constructor names whose module-level call creates fork-unsafe state.
_FORK_UNSAFE_CONSTRUCTORS = {
    "open": "an open file handle",
    "Popen": "a child process",
    "Pool": "a live process pool",
    "ProcessPoolExecutor": "a live process pool",
    "Thread": "a thread object",
    "ThreadPoolExecutor": "a live thread pool",
    "Timer": "a timer thread",
    "socket": "a socket",
}

#: Modules whose attribute calls at module level are fork-hazards...
_FORK_UNSAFE_MODULES = {"threading", "multiprocessing", "subprocess", "socket", "concurrent"}

#: ...except these attrs: synchronization primitives (fork-safe to *create*;
#: the child gets an unlocked copy) and pure queries that hold nothing open.
_FORK_SAFE_ATTRS = {
    "Lock",
    "RLock",
    "Event",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "local",
    "get_context",
    "get_start_method",
    "cpu_count",
    "current_thread",
    "main_thread",
    "active_count",
    "get_ident",
}


def _executor_safety_scope(module: SourceModule) -> bool:
    """Everything a forked worker inherits: the full stack below the CLI.

    ``ParallelExecutor`` forks, so workers inherit every module the parent
    imported; the app layer (CLI, analysis tooling) is excluded because it
    runs only in the parent and is where pools legitimately live.
    """
    name = module.module
    if name is None:
        return False
    return layer_of(name) in {
        "base", "model", "obs", "runtime", "scenarios", "experiments", "fleet",
    }


def _module_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Statements that execute at import time, outside any function or class.

    Descends into module-level ``if``/``try``/``with`` (guards and probes)
    but not into function or class bodies: state created there is lazy (or a
    class attribute a dataclass ``field()`` manages), not import-time state.
    """

    def walk(statements: List[ast.stmt]) -> Iterator[ast.stmt]:
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield stmt
            if isinstance(stmt, ast.If):
                yield from walk(stmt.body)
                yield from walk(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                yield from walk(stmt.body)
                for handler in stmt.handlers:
                    yield from walk(handler.body)
                yield from walk(stmt.orelse)
                yield from walk(stmt.finalbody)
            elif isinstance(stmt, (ast.With, ast.For, ast.While)):
                yield from walk(stmt.body)

    yield from walk(tree.body)


def _check_executor_safety(module: SourceModule) -> Iterator[Tuple[int, str]]:
    seen: Set[Tuple[int, str]] = set()
    for stmt in _module_level_statements(module.tree):
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in _FORK_UNSAFE_CONSTRUCTORS:
                what = _FORK_UNSAFE_CONSTRUCTORS[func.id]
                seen.add(
                    (
                        node.lineno,
                        f"module-level {func.id}() creates {what} at import "
                        "time; forked workers inherit it in an undefined "
                        "state -- create it lazily inside a function",
                    )
                )
            elif isinstance(func, ast.Attribute):
                root = _root_name(func.value)
                if (
                    root in _FORK_UNSAFE_MODULES
                    and func.attr not in _FORK_SAFE_ATTRS
                ):
                    seen.add(
                        (
                            node.lineno,
                            f"module-level {root}.{func.attr}() call at import "
                            "time; forked workers inherit whatever it opened "
                            "or started -- create it lazily inside a function",
                        )
                    )
                elif func.attr == "start":
                    seen.add(
                        (
                            node.lineno,
                            "module-level .start() call: a thread or process "
                            "started at import time does not survive fork "
                            "(the child sees its locks and state, not the "
                            "thread) -- start it lazily inside a function",
                        )
                    )
    yield from sorted(seen)


# ---------------------------------------------------------------------------
# cache-key-hygiene: hashed payloads carry schema stamps; digests flow
# through the one canonical encoder.
# ---------------------------------------------------------------------------


def _cache_key_scope(module: SourceModule) -> bool:
    return module.module is not None


def _check_cache_key_hygiene(module: SourceModule) -> Iterator[Tuple[int, str]]:
    seen: Set[Tuple[int, str]] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            # Any hashlib use outside repro.hashing bypasses canonical_json:
            # the digest is taken over some ad-hoc encoding, so equal specs
            # can hash unequal (and vice versa) depending on formatting.
            if module.module == "repro.hashing":
                continue
            imports_hashlib = (
                isinstance(node, ast.Import)
                and any(alias.name == "hashlib" for alias in node.names)
            ) or (isinstance(node, ast.ImportFrom) and node.module == "hashlib")
            if imports_hashlib:
                seen.add(
                    (
                        node.lineno,
                        "hashlib imported outside repro.hashing; content "
                        "hashes must flow through repro.hashing.content_hash "
                        "(canonical_json + sha256) so equal payloads always "
                        "hash equal",
                    )
                )
        elif isinstance(node, ast.Call):
            func = node.func
            is_content_hash = (
                isinstance(func, ast.Name) and func.id == "content_hash"
            ) or (isinstance(func, ast.Attribute) and func.attr == "content_hash")
            if not is_content_hash or not node.args:
                continue
            payload = node.args[0]
            if not isinstance(payload, ast.Dict):
                # Non-literal payloads (an object's to_dict(), a variable)
                # carry their schema stamp at the definition site; only the
                # inline dict literal is checkable -- and forgeable -- here.
                continue
            literal_keys = {
                key.value
                for key in payload.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            }
            has_splat = any(key is None for key in payload.keys)
            if "schema" not in literal_keys and not has_splat:
                seen.add(
                    (
                        node.lineno,
                        "content_hash() payload dict has no 'schema' key; "
                        "unversioned payloads collide across format changes "
                        "-- stamp it with the module's *SCHEMA_VERSION",
                    )
                )
    yield from sorted(seen)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

RULES: Dict[str, LintRule] = {
    rule.name: rule
    for rule in [
        LintRule(
            name="determinism",
            severity="error",
            summary="no wall clocks, global RNGs, or env reads in result-producing modules",
            rationale=(
                "Results must be bit-identical across serial/parallel/cold/warm "
                "runs, and job payloads are content-addressed: anything a model, "
                "hashing, scenario, or job-payload module reads from a wall "
                "clock, a global RNG, or the process environment leaks "
                "irreproducible state into cached artifacts. Timing belongs in "
                "repro.obs, the bench harness, and the executors; randomness "
                "must flow through an explicitly seeded np.random.default_rng."
            ),
            applies=_deterministic_scope,
            check=_check_determinism,
        ),
        LintRule(
            name="hash-surface",
            severity="error",
            summary="frozen content-hashed specs must serialize every field",
            rationale=(
                "Content hashes are computed from to_dict() payloads. A field "
                "added to a frozen spec but not to its serializer silently "
                "stops affecting the hash, so two semantically different specs "
                "collide in the result cache -- the worst possible failure, "
                "because it returns *wrong cached results* rather than "
                "crashing. Every dataclass field must reach to_dict()/"
                "from_dict() (or be declared metadata via METADATA_FIELDS), "
                "and hashed payloads need a *SCHEMA_VERSION constant so the "
                "format can evolve without silent collisions."
            ),
            applies=_hash_surface_scope,
            check=_check_hash_surface,
        ),
        LintRule(
            name="layering",
            severity="error",
            summary="top-level imports must follow the layer DAG (model never sees obs/runtime)",
            rationale=(
                "The determinism and telemetry-inertness guarantees are "
                "structural: the model stack computes results without ever "
                "importing the runtime or telemetry, so those layers *cannot* "
                "perturb what gets hashed. One stray top-level import "
                "re-couples the layers. Function-scoped deferred imports are "
                "exempt -- they are the sanctioned cycle-breaking idiom."
            ),
            applies=_layering_scope,
            check=_check_layering,
        ),
        LintRule(
            name="telemetry-inert",
            severity="error",
            summary="obs code must not mutate the objects it observes",
            rationale=(
                "Telemetry is bit-inert: enabling metrics, spans, or tracing "
                "must never change a simulation result (the bench harness "
                "checks this dynamically; this rule checks it statically). "
                "Code under repro.obs therefore must not assign through, call "
                "mutating methods on, or setattr() objects handed to it -- "
                "observation reads, it never writes back."
            ),
            applies=_telemetry_scope,
            check=_check_telemetry_inert,
        ),
        LintRule(
            name="executor-safety",
            severity="error",
            summary="no fork-unsafe module-level state (handles, threads, pools) in worker-imported modules",
            rationale=(
                "ParallelExecutor forks its workers, and a forked child "
                "inherits every module the parent imported -- including any "
                "file handle, socket, thread, or pool created at module "
                "level. Handles end up shared (two processes interleaving "
                "writes into one descriptor), threads silently do not exist "
                "in the child while their locks carry over locked, and a "
                "live pool inherited through fork deadlocks. Import-time "
                "state in any module below the CLI must therefore be plain "
                "data; handles and threads are created lazily, inside "
                "functions, after the fork."
            ),
            applies=_executor_safety_scope,
            check=_check_executor_safety,
        ),
        LintRule(
            name="cache-key-hygiene",
            severity="error",
            summary="content_hash payloads carry a schema stamp; digests only via repro.hashing",
            rationale=(
                "Every cache key and spec identity is "
                "repro.hashing.content_hash over a canonical_json encoding. "
                "Two hygiene rules keep those keys trustworthy: an inline "
                "payload dict must carry a 'schema' version stamp (an "
                "unversioned payload collides with its future self when the "
                "format changes -- returning wrong cached results instead of "
                "recomputing), and hashlib must not be used outside "
                "repro.hashing (an ad-hoc digest bypasses canonical_json, so "
                "semantically equal payloads can hash unequal depending on "
                "key order or formatting)."
            ),
            applies=_cache_key_scope,
            check=_check_cache_key_hygiene,
        ),
        LintRule(
            name="console",
            severity="warning",
            summary="no bare print() or raw stream writes outside the Console implementation",
            rationale=(
                "All human-facing output flows through "
                "repro.obs.logging.Console so that --quiet/--json modes, "
                "progress rendering, and tests capturing output behave "
                "consistently. A bare print() bypasses every one of those "
                "controls and corrupts machine-readable output modes."
            ),
            applies=_console_scope,
            check=_check_console,
        ),
    ]
}
