"""The import-layer DAG the ``layering`` rule enforces.

The reproduction's determinism story depends on a one-way dependency flow:
the model stack (``core``/``power``/``sim``/...) computes results, the
runtime orchestrates it, telemetry observes from the side, and the CLI sits
on top.  A single stray ``from repro.obs import ...`` inside the sim layer
would let telemetry state reach result computation -- exactly the class of
bug the "telemetry is bit-inert" contract forbids -- so the layering is
enforced structurally, on *top-level* imports.

Function-scoped deferred imports are deliberately exempt: they are the
repo's sanctioned cycle-breaking idiom (the runtime lazily importing the
scenario registry, ``hw.spec.build`` lazily importing calibration), and
they cannot create import-time coupling.

Layers, bottom to top::

    base        config, hashing, params          (imports: base)
    model       core, memory, soc, power, hw,    (imports: base, model)
                workloads, perf, baselines, sim
    obs         obs/**                           (imports: base, obs)
    runtime     runtime/* except cli             (imports: base, model, obs, runtime)
    scenarios   scenarios/**                     (imports: + runtime, scenarios)
    experiments experiments/**                   (imports: + scenarios, experiments)
    fleet       fleet/**                         (imports: + scenarios, fleet)
    app         cli, __main__, api, analysis,    (imports: anything)
                package __init__

The crucial edges *absent* from this DAG: model cannot see obs or runtime
(telemetry/orchestration cannot perturb results), and obs cannot see
runtime or model (observation cannot reach back into execution).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

__all__ = ["ALLOWED", "LAYERS", "layer_of", "layering_violation"]

#: Longest-prefix-match table from dotted module to layer.
LAYERS: Dict[str, str] = {
    "repro.config": "base",
    "repro.hashing": "base",
    "repro.params": "base",
    "repro.core": "model",
    "repro.memory": "model",
    "repro.soc": "model",
    "repro.power": "model",
    "repro.hw": "model",
    "repro.workloads": "model",
    "repro.perf": "model",
    "repro.baselines": "model",
    "repro.sim": "model",
    "repro.obs": "obs",
    "repro.runtime": "runtime",
    "repro.runtime.cli": "app",
    "repro.scenarios": "scenarios",
    "repro.experiments": "experiments",
    "repro.fleet": "fleet",
    # Everything else under repro (package __init__, __main__, api, analysis)
    # is app-layer: free to import the whole stack.
    "repro": "app",
}

#: What each layer's top-level imports may reach (within ``repro``).
ALLOWED: Dict[str, Set[str]] = {
    "base": {"base"},
    "model": {"base", "model"},
    "obs": {"base", "obs"},
    "runtime": {"base", "model", "obs", "runtime"},
    "scenarios": {"base", "model", "obs", "runtime", "scenarios"},
    "experiments": {"base", "model", "obs", "runtime", "scenarios", "experiments"},
    "fleet": {"base", "model", "obs", "runtime", "scenarios", "fleet"},
    "app": {
        "base", "model", "obs", "runtime", "scenarios", "experiments", "fleet", "app",
    },
}


def layer_of(module: str) -> Optional[str]:
    """Layer of a dotted module name (longest prefix wins); None if foreign."""
    if module != "repro" and not module.startswith("repro."):
        return None
    parts = module.split(".")
    while parts:
        layer = LAYERS.get(".".join(parts))
        if layer is not None:
            return layer
        parts.pop()
    return None


def layering_violation(importer: str, imported: str) -> Optional[str]:
    """A message if ``importer``'s top-level import of ``imported`` breaks
    the DAG; None when the edge is allowed or either side is foreign."""
    importer_layer = layer_of(importer)
    imported_layer = layer_of(imported)
    if importer_layer is None or imported_layer is None:
        return None
    if imported_layer in ALLOWED[importer_layer]:
        return None
    return (
        f"{importer_layer}-layer module imports {imported!r} "
        f"({imported_layer} layer); allowed layers: "
        f"{', '.join(sorted(ALLOWED[importer_layer]))}"
    )
