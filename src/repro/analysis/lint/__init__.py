"""``repro.analysis.lint``: the repo's contracts as machine-checked rules.

Five AST-based rules guard the reproduction's documented guarantees:

==================  ========  ====================================================
rule                severity  enforces
==================  ========  ====================================================
``determinism``     error     no wall clocks / global RNGs / env reads where
                              results are computed and hashed
``hash-surface``    error     frozen content-hashed specs serialize every field
                              and stamp a schema version
``layering``        error     top-level imports follow the layer DAG (the model
                              stack never sees obs or the runtime)
``telemetry-inert`` error     ``repro.obs`` never mutates what it observes
``console``         warning   output flows through ``Console``, never bare
                              ``print()``
==================  ========  ====================================================

Escape hatches: ``# reprolint: disable=RULE`` inline, or the committed
``.reprolint-baseline.json``.  CLI: ``python -m repro lint`` (see
``--list-rules`` / ``--explain RULE``); CI runs it as a hard gate.
"""

from repro.analysis.lint.engine import DEFAULT_ROOTS, LintReport, lint_paths
from repro.analysis.lint.findings import Baseline, Finding
from repro.analysis.lint.rules import RULES, LintRule

__all__ = [
    "Baseline",
    "DEFAULT_ROOTS",
    "Finding",
    "LintReport",
    "LintRule",
    "RULES",
    "lint_paths",
]
