"""The ``repro lint`` command body (shared with ``tools/lint_prints.py``).

Exit codes follow the rest of the CLI: 0 clean, 1 findings, 2 usage or
I/O errors.  ``--json`` emits the full :class:`LintReport` payload on
stdout (decorations move to stderr), which is what the CI gate archives.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.lint.engine import lint_paths
from repro.analysis.lint.explain import explain_rule
from repro.analysis.lint.findings import Baseline
from repro.analysis.lint.rules import RULES
from repro.obs.logging import Console

__all__ = ["DEFAULT_BASELINE", "run_lint"]

#: The committed baseline the gate consults when present.
DEFAULT_BASELINE = ".reprolint-baseline.json"


def run_lint(
    paths: Sequence[str] = (),
    *,
    as_json: bool = False,
    baseline_path: Optional[str] = None,
    update_baseline: bool = False,
    explain: Optional[str] = None,
    list_rules: bool = False,
    rules: Optional[Sequence[str]] = None,
    repo_root: Optional[Path] = None,
    console: Optional[Console] = None,
) -> int:
    """Run the linter; returns the process exit code."""
    ui = console if console is not None else Console()
    root = (repo_root or Path.cwd()).resolve()

    if list_rules:
        for rule in RULES.values():
            ui.out(f"{rule.name:16s} {rule.severity:8s} {rule.summary}")
        return 0

    if explain is not None:
        if explain not in RULES:
            ui.error(f"unknown rule {explain!r}; known: {', '.join(RULES)}")
            return 2
        ui.out(explain_rule(explain, repo_root=root))
        return 0

    resolved_baseline: Optional[Path] = None
    if baseline_path is not None:
        resolved_baseline = Path(baseline_path)
        if not resolved_baseline.is_absolute():
            resolved_baseline = root / resolved_baseline
    elif (root / DEFAULT_BASELINE).is_file() or update_baseline:
        resolved_baseline = root / DEFAULT_BASELINE

    baseline: Optional[Baseline] = None
    if resolved_baseline is not None and resolved_baseline.is_file() and not update_baseline:
        try:
            baseline = Baseline.load(resolved_baseline)
        except (OSError, ValueError, KeyError) as exc:
            ui.error(f"cannot read baseline {resolved_baseline}: {exc}")
            return 2

    try:
        report = lint_paths(
            list(paths) or None, repo_root=root, rules=rules, baseline=baseline
        )
    except KeyError as exc:
        ui.error(str(exc.args[0]) if exc.args else str(exc))
        return 2

    if update_baseline:
        assert resolved_baseline is not None
        Baseline.from_findings(report.findings).save(resolved_baseline)
        ui.info(
            f"wrote {len(report.findings)} finding(s) to "
            f"{resolved_baseline.name}; the gate now tolerates (not endorses) them"
        )
        return 0

    if as_json:
        ui.out(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for error in report.errors:
            ui.error(error)
        for finding in report.findings:
            ui.out(finding.render())
        summary = (
            f"{len(report.findings)} finding(s) in {report.files_scanned} file(s)"
        )
        extras = []
        if report.suppressed:
            extras.append(f"{report.suppressed} suppressed inline")
        if report.baselined:
            extras.append(f"{report.baselined} baselined")
        if extras:
            summary += f" ({', '.join(extras)})"
        ui.info(summary)

    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Minimal standalone entry (the real parser lives in repro.runtime.cli)."""
    args = list(sys.argv[1:] if argv is None else argv)
    as_json = "--json" in args
    paths = [a for a in args if not a.startswith("-")]
    return run_lint(paths, as_json=as_json)


if __name__ == "__main__":
    raise SystemExit(main())
