"""Findings, suppressions, and the committed baseline.

A :class:`Finding` is one rule violation at one source line.  Two escape
hatches keep the gate honest without blocking work:

* **inline suppressions** -- ``# reprolint: disable=RULE`` on the offending
  line waives that rule there, visibly, in the diff;
* **the baseline** -- a committed JSON file of known findings that are
  tolerated but not endorsed.  Baseline entries match on ``(rule, path,
  message)`` with a multiplicity, *not* on line numbers, so unrelated edits
  that shift a tolerated finding up or down the file do not break the gate.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Tuple

__all__ = [
    "Baseline",
    "Finding",
    "suppressed_rules",
]

#: ``# reprolint: disable=rule-a,rule-b`` -- waives the listed rules on the
#: physical line the comment sits on.
_DISABLE_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation: where, what, and how bad."""

    rule: str
    severity: str  # "error" | "warning"
    path: str  # repo-relative, posix separators
    line: int
    message: str

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers deliberately excluded."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.severity}: {self.message}"


def suppressed_rules(line: str) -> Tuple[str, ...]:
    """Rules waived by a ``# reprolint: disable=...`` pragma on ``line``."""
    match = _DISABLE_RE.search(line)
    if not match:
        return ()
    return tuple(
        part.strip() for part in match.group(1).split(",") if part.strip()
    )


class Baseline:
    """Known findings tolerated by the gate, keyed with multiplicity.

    The file format is a sorted list of ``{rule, path, message, count}``
    entries so diffs stay reviewable and the count shrinking over time is
    visible in the history.
    """

    def __init__(self, counts: Dict[Tuple[str, str, str], int] | None = None) -> None:
        self.counts: Dict[Tuple[str, str, str], int] = dict(counts or {})

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            key = finding.key()
            baseline.counts[key] = baseline.counts.get(key, 0) + 1
        return baseline

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        baseline = cls()
        for entry in data.get("findings", []):
            key = (str(entry["rule"]), str(entry["path"]), str(entry["message"]))
            baseline.counts[key] = baseline.counts.get(key, 0) + int(
                entry.get("count", 1)
            )
        return baseline

    def to_dict(self) -> Dict[str, Any]:
        return {
            "findings": [
                {"rule": rule, "path": path, "message": message, "count": count}
                for (rule, path, message), count in sorted(self.counts.items())
            ]
        }

    def save(self, path: Path) -> None:
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def filter_new(self, findings: List[Finding]) -> List[Finding]:
        """Findings not absorbed by the baseline (multiplicity-aware)."""
        budget = dict(self.counts)
        fresh: List[Finding] = []
        for finding in findings:
            key = finding.key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
            else:
                fresh.append(finding)
        return fresh
