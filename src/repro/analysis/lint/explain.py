"""``repro lint --explain RULE``: rationale plus a concrete bad/good pair.

The examples are not prose invented here: they are the *same* golden
fixtures the test suite runs the rules against (``tests/fixtures/lint/
<rule>_bad.py`` / ``<rule>_good.py``), so the explanation can never drift
from what the rule actually fires on.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import List, Optional

from repro.analysis.lint.rules import RULES

__all__ = ["explain_rule", "fixtures_dir"]


def fixtures_dir(repo_root: Optional[Path] = None) -> Optional[Path]:
    """Locate ``tests/fixtures/lint``: cwd first, then relative to the
    source checkout this module lives in.  None when not in a checkout."""
    candidates = []
    if repo_root is not None:
        candidates.append(repo_root / "tests" / "fixtures" / "lint")
    candidates.append(Path.cwd() / "tests" / "fixtures" / "lint")
    candidates.append(
        Path(__file__).resolve().parents[4] / "tests" / "fixtures" / "lint"
    )
    for candidate in candidates:
        if candidate.is_dir():
            return candidate
    return None


def _fixture_snippet(directory: Path, name: str) -> Optional[str]:
    path = directory / name
    if not path.is_file():
        return None
    lines: List[str] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        # Drop the fixture scaffolding (module pragma, leading docstring is
        # kept -- it usually states intent).
        if "reprolint: module=" in line:
            continue
        lines.append(line)
    snippet = "\n".join(lines).strip()
    return snippet or None


def explain_rule(rule_name: str, repo_root: Optional[Path] = None) -> str:
    """Human-readable explanation of one rule; raises KeyError if unknown."""
    rule = RULES[rule_name]
    sections: List[str] = [
        f"{rule.name} ({rule.severity})",
        f"  {rule.summary}",
        "",
        textwrap.fill(rule.rationale, width=78, initial_indent="", subsequent_indent=""),
    ]
    directory = fixtures_dir(repo_root)
    if directory is not None:
        slug = rule.name.replace("-", "_")
        bad = _fixture_snippet(directory, f"{slug}_bad.py")
        good = _fixture_snippet(directory, f"{slug}_good.py")
        if bad:
            sections += ["", "Fires on:", "", textwrap.indent(bad, "    ")]
        if good:
            sections += ["", "Clean:", "", textwrap.indent(good, "    ")]
    else:
        sections += [
            "",
            "(example fixtures not found -- run from a source checkout to see them)",
        ]
    return "\n".join(sections)
