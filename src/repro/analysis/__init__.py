"""``repro.analysis``: static analysis of the reproduction's own source.

The reproduction's headline guarantees -- bit-identical results across
serial/parallel/cold/warm execution, stable content hashes, telemetry that
cannot perturb results -- are *conventions* unless something checks them.
:mod:`repro.analysis.lint` turns the conventions into machine-checked rules
over the AST of the repo itself, exposed as ``python -m repro lint``.
"""
