"""JSON-scalar parameter tuples shared by every declarative spec layer.

Specs across the reproduction -- runtime jobs, scenario catalog entries --
carry their keyword parameters as sorted ``(key, value)`` tuples restricted to
JSON scalars (plus string sequences), so that the same payload is hashable,
order-insensitive, and round-trips through canonical JSON untouched.  The
helpers live in this dependency-free module (like :mod:`repro.hashing`) so
that both :mod:`repro.runtime.jobs` and :mod:`repro.scenarios.registry` can
share one definition without the scenario layer reaching into the runtime.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple, Union

#: JSON-scalar parameter values (tuples carry ordered string sequences).
ParamValue = Union[str, int, float, bool, None, Tuple[str, ...]]
Params = Tuple[Tuple[str, ParamValue], ...]


def normalize_params(params: Dict[str, Any]) -> Params:
    """Sort parameters by key and freeze list values into tuples."""
    items: List[Tuple[str, ParamValue]] = []
    for key in sorted(params):
        value = params[key]
        if isinstance(value, list):
            value = tuple(value)
        if isinstance(value, tuple):
            if not all(isinstance(item, str) for item in value):
                raise TypeError(f"sequence parameter {key!r} must contain only strings")
        elif value is not None and not isinstance(value, (str, int, float, bool)):
            raise TypeError(
                f"parameter {key!r} must be a JSON scalar or a sequence of strings, "
                f"got {type(value).__name__}"
            )
        items.append((key, value))
    return tuple(items)


def params_to_jsonable(params: Params) -> Dict[str, Any]:
    """Plain-dict view of normalized parameters (tuples become lists)."""
    return {
        key: list(value) if isinstance(value, tuple) else value for key, value in params
    }
