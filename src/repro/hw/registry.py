"""The named hardware catalog: platforms addressable by name everywhere.

Registered specs back the ``--platform NAME`` CLI flag, the ``hw``
subcommands, hardware-grid campaigns, and the ``hwsweep`` experiment.  Every
entry except the Skylake base is a *delta* over another entry, expressed
through :meth:`~repro.hw.spec.HardwareSpec.derive` -- Broadwell is a Skylake
variant with a hotter uncore, not a subclass mutating fields after
construction.

Nothing stops code from minting ad-hoc specs beyond the catalog:
``get_hardware("skylake").derive(tdp=5.5)`` is a first-class platform the
runtime caches and parallelizes like any registered one.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.hw.spec import HardwareSpec

#: Every registered hardware description, by name.
HARDWARE: Dict[str, HardwareSpec] = {}


def register_hardware(spec: HardwareSpec) -> HardwareSpec:
    """Add ``spec`` to the catalog under ``spec.name`` (names are unique)."""
    if spec.name in HARDWARE:
        raise ValueError(f"hardware {spec.name!r} is already registered")
    HARDWARE[spec.name] = spec
    return spec


def get_hardware(name: str) -> HardwareSpec:
    """Look a spec up by name, with a helpful error listing known platforms."""
    spec = HARDWARE.get(name)
    if spec is None:
        raise KeyError(
            f"unknown hardware {name!r}; known: {', '.join(sorted(HARDWARE))}"
        )
    return spec


def resolve_hardware(
    hardware: Optional[Union[str, HardwareSpec]] = None,
) -> HardwareSpec:
    """Normalize a platform argument (name, spec, or ``None``) to a spec."""
    if hardware is None:
        return SKYLAKE
    if isinstance(hardware, HardwareSpec):
        return hardware
    if isinstance(hardware, str):
        return get_hardware(hardware)
    raise TypeError(
        f"cannot interpret {type(hardware).__name__} as a hardware description"
    )


# ---------------------------------------------------------------------------
# The catalog
# ---------------------------------------------------------------------------

#: The Skylake M-6Y75 evaluation platform of Table 2 (the default everywhere).
SKYLAKE = register_hardware(
    HardwareSpec(description="Intel Core M-6Y75, the Table 2 evaluation platform")
)

#: The Broadwell M-5Y71 motivation platform of Sec. 3: one process generation
#: older, modelled as ~8 % higher uncore leakage over the Skylake description.
BROADWELL = register_hardware(
    SKYLAKE.derive(
        name="broadwell",
        soc_name="Intel Core M-5Y71 (Broadwell)",
        uncore_leakage_coeff_scale=1.08,
        description="Intel Core M-5Y71, the Sec. 3 motivation platform",
    )
)

register_hardware(
    SKYLAKE.derive(
        name="skylake-3.5w",
        tdp=3.5,
        description="Skylake at the bottom of the Table 2 cTDP range",
    )
)

register_hardware(
    SKYLAKE.derive(
        name="skylake-7w",
        tdp=7.0,
        description="Skylake at the top of the Table 2 cTDP range",
    )
)

register_hardware(
    SKYLAKE.derive(
        name="skylake-ddr4",
        dram="ddr4",
        description="Skylake with the DDR4 device of the Sec. 7.4 study",
    )
)

register_hardware(
    SKYLAKE.derive(
        name="skylake-lowleak",
        cpu_leakage_coeff_scale=0.85,
        gfx_leakage_coeff_scale=0.85,
        uncore_leakage_coeff_scale=0.85,
        description="a well-binned die: 15 % lower leakage in every domain",
    )
)

register_hardware(
    SKYLAKE.derive(
        name="skylake-28mm2",
        llc_bytes=2 * 1024 * 1024,
        uncore_ceff_scale=0.85,
        cpu_leakage_coeff_scale=0.9,
        gfx_leakage_coeff_scale=0.9,
        uncore_leakage_coeff_scale=0.9,
        description="a die-shrink what-if: half the LLC, smaller uncore, "
        "proportionally less leakage",
    )
)
