"""Declarative hardware descriptions: the :class:`HardwareSpec` value object.

A :class:`HardwareSpec` describes an *entire* evaluation platform as data: the
SoC identity and process, the per-domain power-model coefficients, the
shared-rail VR topology of Fig. 1, the compute V/F curves and P-state grids,
the IO interconnect clocks, the attached DRAM device (itself a nested
:class:`DramSpec`), the package TDP, and the fixed platform power.  It is
frozen, hashable, JSON-serializable, and content-hashable, so a hardware
description flows through the runtime exactly like a trace or a policy: job
content hashes cover the full platform, and arbitrary hardware variants cache,
deduplicate, and parallelize like any other job dimension.

Variants are expressed as *deltas* with :meth:`HardwareSpec.derive`::

    broadwell = SKYLAKE.derive(
        name="broadwell",
        soc_name="Intel Core M-5Y71 (Broadwell)",
        uncore_leakage_coeff_scale=1.08,   # <field>_scale multiplies the base
    )
    warm = SKYLAKE.derive(tdp=7.0, dram="ddr4")

The default field values mirror ``repro.config`` exactly, so the default spec
reproduces the seed Skylake M-6Y75 platform bit-identically (a regression test
pins this).  Materialization lives in :mod:`repro.hw.build`; the named catalog
lives in :mod:`repro.hw.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, ClassVar, Dict, Tuple, Union

from repro import config, hashing
from repro.memory.dram import DramDevice, DramOrganization, DramTechnology
from repro.power.pstates import (
    DEFAULT_CPU_FREQUENCIES,
    DEFAULT_GFX_FREQUENCIES,
    build_cpu_vf_curve,
    build_gfx_vf_curve,
)

#: Bump when the hardware-description schema changes incompatibly.
HW_SCHEMA_VERSION = 1

#: ``(frequency_hz, voltage_v)`` pairs of a V/F curve, as plain data.
VFPoints = Tuple[Tuple[float, float], ...]


def _freeze_points(points: Any) -> VFPoints:
    """Normalize a V/F point sequence into a tuple of ``(float, float)`` pairs."""
    frozen = tuple((float(f), float(v)) for f, v in points)
    if len(frozen) < 2:
        raise ValueError("a V/F curve needs at least two points")
    return frozen


def _freeze_frequencies(frequencies: Any) -> Tuple[float, ...]:
    """Normalize a frequency list into a tuple of positive floats."""
    frozen = tuple(float(f) for f in frequencies)
    if not frozen or any(f <= 0 for f in frozen):
        raise ValueError("frequency lists must be non-empty and positive")
    return frozen


@dataclass(frozen=True)
class DramSpec:
    """One DRAM device configuration, as data (lossless vs. ``DramDevice``)."""

    technology: str = "lpddr3"
    frequency_bins: Tuple[float, ...] = config.LPDDR3_FREQUENCY_BINS
    ranks: int = 2
    banks_per_rank: int = 8
    rows_per_bank: int = 32768
    row_size_bytes: int = 4096
    capacity_bytes: int = 8 * 1024 ** 3
    vddq: float = 1.2
    channels: int = 2
    bus_width_bytes: int = 8

    def __post_init__(self) -> None:
        DramTechnology(self.technology)  # raises on unknown families
        object.__setattr__(
            self, "frequency_bins", _freeze_frequencies(self.frequency_bins)
        )

    def device(self) -> DramDevice:
        """Materialize the described :class:`DramDevice` (fresh, boot state)."""
        return DramDevice(
            technology=DramTechnology(self.technology),
            frequency_bins=self.frequency_bins,
            organization=DramOrganization(
                ranks=self.ranks,
                banks_per_rank=self.banks_per_rank,
                rows_per_bank=self.rows_per_bank,
                row_size_bytes=self.row_size_bytes,
                capacity_bytes=self.capacity_bytes,
            ),
            vddq=self.vddq,
            channels=self.channels,
            bus_width_bytes=self.bus_width_bytes,
        )

    @classmethod
    def from_device(cls, device: DramDevice) -> "DramSpec":
        """The spec describing an existing device (configuration, not live state)."""
        return cls(
            technology=device.technology.value,
            frequency_bins=device.frequency_bins,
            ranks=device.organization.ranks,
            banks_per_rank=device.organization.banks_per_rank,
            rows_per_bank=device.organization.rows_per_bank,
            row_size_bytes=device.organization.row_size_bytes,
            capacity_bytes=device.organization.capacity_bytes,
            vddq=device.vddq,
            channels=device.channels,
            bus_width_bytes=device.bus_width_bytes,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "technology": self.technology,
            "frequency_bins": list(self.frequency_bins),
            "ranks": self.ranks,
            "banks_per_rank": self.banks_per_rank,
            "rows_per_bank": self.rows_per_bank,
            "row_size_bytes": self.row_size_bytes,
            "capacity_bytes": self.capacity_bytes,
            "vddq": self.vddq,
            "channels": self.channels,
            "bus_width_bytes": self.bus_width_bytes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DramSpec":
        return cls(**{**data, "frequency_bins": tuple(data["frequency_bins"])})


#: Named DRAM configurations (``HardwareSpec(dram="ddr4")`` resolves here).
DRAM_SPECS: Dict[str, DramSpec] = {
    "lpddr3": DramSpec(
        technology="lpddr3", frequency_bins=config.LPDDR3_FREQUENCY_BINS
    ),
    "ddr4": DramSpec(technology="ddr4", frequency_bins=config.DDR4_FREQUENCY_BINS),
}


def resolve_dram(dram: Union[str, DramSpec, Dict[str, Any], DramDevice]) -> DramSpec:
    """Normalize any DRAM description (name, spec, dict, device) to a spec."""
    if isinstance(dram, DramSpec):
        return dram
    if isinstance(dram, DramDevice):
        return DramSpec.from_device(dram)
    if isinstance(dram, dict):
        return DramSpec.from_dict(dram)
    if isinstance(dram, str):
        if dram not in DRAM_SPECS:
            raise KeyError(
                f"unknown DRAM device {dram!r}; known: {sorted(DRAM_SPECS)}"
            )
        return DRAM_SPECS[dram]
    raise TypeError(f"cannot interpret {type(dram).__name__} as a DRAM description")


@dataclass(frozen=True)
class HardwareSpec:
    """A complete evaluation platform as a frozen, hashable value object.

    The constructor keeps the historical ``PlatformSpec`` keyword surface
    (``tdp``, ``dram``, ``platform_fixed_power``) while exposing every other
    hardware parameter the imperative builders used to hard-code.  ``dram``
    accepts a registered name (``"lpddr3"``, ``"ddr4"``), a :class:`DramSpec`,
    a serialized dict, or a live :class:`DramDevice`.
    """

    # -- package ------------------------------------------------------
    tdp: float = config.SKYLAKE_DEFAULT_TDP
    dram: DramSpec = DRAM_SPECS["lpddr3"]
    platform_fixed_power: float = config.PLATFORM_FIXED_POWER
    # -- identity (presentation metadata: see ``to_dict``) ------------
    name: str = field(default="skylake", compare=False)
    soc_name: str = field(default="Intel Core M-6Y75 (Skylake)", compare=False)
    process_node_nm: int = 14
    # -- compute domain -----------------------------------------------
    cpu_core_count: int = config.SKYLAKE_CORE_COUNT
    cpu_threads_per_core: int = config.SKYLAKE_THREADS_PER_CORE
    cpu_base_frequency: float = config.SKYLAKE_CPU_BASE_FREQUENCY
    cpu_ceff: float = config.CPU_CORE_CEFF
    cpu_leakage_coeff: float = config.CPU_CORE_LEAKAGE_COEFF
    gfx_base_frequency: float = config.SKYLAKE_GFX_BASE_FREQUENCY
    gfx_ceff: float = config.GFX_CEFF
    gfx_leakage_coeff: float = config.GFX_LEAKAGE_COEFF
    uncore_ceff: float = config.UNCORE_CEFF
    uncore_leakage_coeff: float = config.UNCORE_LEAKAGE_COEFF
    llc_bytes: int = config.SKYLAKE_LLC_BYTES
    # -- V/F curves and P-state grids ---------------------------------
    cpu_vf_points: VFPoints = build_cpu_vf_curve().points
    gfx_vf_points: VFPoints = build_gfx_vf_curve().points
    cpu_pstate_frequencies: Tuple[float, ...] = DEFAULT_CPU_FREQUENCIES
    gfx_pstate_frequencies: Tuple[float, ...] = DEFAULT_GFX_FREQUENCIES
    # -- shared-rail VR topology (Fig. 1) -----------------------------
    v_sa_nominal: float = 0.55
    v_io_nominal: float = 0.70
    vddq_nominal: float = 1.2
    v_core_nominal: float = 1.0
    v_gfx_nominal: float = 1.0
    v_sa_low_scale: float = config.V_SA_LOW_SCALE
    v_io_low_scale: float = config.V_IO_LOW_SCALE
    # -- IO interconnect ----------------------------------------------
    io_interconnect_high_frequency: float = config.IO_INTERCONNECT_HIGH_FREQUENCY
    io_interconnect_low_frequency: float = config.IO_INTERCONNECT_LOW_FREQUENCY
    # -- memory/IO power-model coefficients ---------------------------
    mc_power_high: float = config.V_SA_MC_POWER_HIGH
    interconnect_power_high: float = config.V_SA_INTERCONNECT_POWER_HIGH
    io_engines_power_high: float = config.V_SA_IO_ENGINES_POWER_HIGH
    ddrio_digital_power_high: float = config.DDRIO_DIGITAL_POWER_HIGH
    dram_background_power_high: float = config.DRAM_BACKGROUND_POWER_HIGH
    dram_background_frequency_fraction: float = (
        config.DRAM_BACKGROUND_FREQUENCY_SCALED_FRACTION
    )
    dram_operation_energy_per_byte: float = config.DRAM_OPERATION_ENERGY_PER_BYTE
    dram_self_refresh_power: float = config.DRAM_SELF_REFRESH_POWER
    # -- registry metadata (not part of the hardware description) ------
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "dram", resolve_dram(self.dram))
        object.__setattr__(self, "cpu_vf_points", _freeze_points(self.cpu_vf_points))
        object.__setattr__(self, "gfx_vf_points", _freeze_points(self.gfx_vf_points))
        object.__setattr__(
            self,
            "cpu_pstate_frequencies",
            _freeze_frequencies(self.cpu_pstate_frequencies),
        )
        object.__setattr__(
            self,
            "gfx_pstate_frequencies",
            _freeze_frequencies(self.gfx_pstate_frequencies),
        )
        if self.tdp <= 0:
            raise ValueError("TDP must be positive")
        if self.platform_fixed_power < 0:
            raise ValueError("platform fixed power must be non-negative")
        if self.cpu_core_count <= 0 or self.cpu_threads_per_core <= 0:
            raise ValueError("core and thread counts must be positive")
        if self.llc_bytes <= 0:
            raise ValueError("LLC capacity must be positive")
        positive = (
            "cpu_base_frequency", "gfx_base_frequency",
            "io_interconnect_high_frequency", "io_interconnect_low_frequency",
            "v_sa_nominal", "v_io_nominal", "vddq_nominal",
            "v_core_nominal", "v_gfx_nominal",
        )
        for field_name in positive:
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        non_negative = (
            "cpu_ceff", "cpu_leakage_coeff", "gfx_ceff", "gfx_leakage_coeff",
            "uncore_ceff", "uncore_leakage_coeff", "mc_power_high",
            "interconnect_power_high", "io_engines_power_high",
            "ddrio_digital_power_high", "dram_background_power_high",
            "dram_operation_energy_per_byte", "dram_self_refresh_power",
        )
        for field_name in non_negative:
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        for field_name in ("v_sa_low_scale", "v_io_low_scale"):
            if not 0 < getattr(self, field_name) <= 1.0:
                raise ValueError(f"{field_name} must be in (0, 1]")
        if not 0.0 <= self.dram_background_frequency_fraction <= 1.0:
            raise ValueError("dram_background_frequency_fraction must be in [0, 1]")

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def derive(self, **overrides: Any) -> "HardwareSpec":
        """A new spec with ``overrides`` applied as a delta over this one.

        Two override forms are accepted:

        * ``field=value`` replaces the field (``dram`` accepts any form
          :func:`resolve_dram` understands);
        * ``<field>_scale=factor`` multiplies a numeric field by ``factor``
          (e.g. ``uncore_leakage_coeff_scale=1.08`` is how Broadwell derives
          from Skylake without restating the coefficient).
        """
        names = {f.name for f in fields(self)}
        changes: Dict[str, Any] = {}
        for key, value in overrides.items():
            if key in names:
                changes[key] = value
                continue
            base = key[: -len("_scale")] if key.endswith("_scale") else None
            if base in names and isinstance(getattr(self, base), (int, float)) \
                    and not isinstance(getattr(self, base), bool):
                if base in overrides:
                    raise ValueError(
                        f"cannot both set and scale {base!r} in one derive()"
                    )
                changes[base] = getattr(self, base) * value
                continue
            raise KeyError(
                f"unknown hardware override {key!r}; expected a HardwareSpec "
                "field or <numeric field>_scale"
            )
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Materialization and presentation
    # ------------------------------------------------------------------
    def build(self):
        """Assemble a fresh :class:`~repro.sim.platform.Platform` (never shared)."""
        from repro.hw.build import build_platform_from_spec  # deferred: avoids cycle

        return build_platform_from_spec(self)

    @property
    def label(self) -> str:
        """Short human-readable identifier for job labels and progress lines."""
        return f"{self.name}/{self.dram.technology}@{self.tdp:g}W"

    def describe(self) -> Dict[str, Any]:
        """Flat summary of the description (no platform assembly required)."""
        return {
            "name": self.name,
            "soc": self.soc_name,
            "tdp_w": self.tdp,
            "process_node_nm": self.process_node_nm,
            "cpu_cores": self.cpu_core_count,
            "cpu_threads": self.cpu_core_count * self.cpu_threads_per_core,
            "cpu_base_frequency_ghz": self.cpu_base_frequency / config.GHZ,
            "gfx_base_frequency_mhz": self.gfx_base_frequency / config.MHZ,
            "llc_mib": self.llc_bytes / (1024 * 1024),
            "dram": self.dram.technology,
            "dram_bins_ghz": [f / config.GHZ for f in self.dram.frequency_bins],
            "dram_capacity_gib": self.dram.capacity_bytes / 1024 ** 3,
            "platform_fixed_power_w": self.platform_fixed_power,
            "content_hash": self.content_hash,
        }

    # ------------------------------------------------------------------
    # Serialization and hashing
    # ------------------------------------------------------------------
    #: Presentation/registry metadata: these fields label a description but do
    #: not change the simulated hardware, so they are excluded from ``to_dict``
    #: (and therefore from equality, content hashes, and job cache keys) --
    #: ``skylake.derive(tdp=7.0)`` and the registered ``skylake-7w`` are the
    #: *same* hardware and must dedupe and share cache entries.
    METADATA_FIELDS: ClassVar[Tuple[str, ...]] = ("name", "soc_name", "description")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready document of the hardware description.

        :data:`METADATA_FIELDS` are deliberately excluded: editing a catalog
        name or blurb must never change job content hashes.
        """
        data: Dict[str, Any] = {}
        for spec_field in fields(self):
            if spec_field.name in self.METADATA_FIELDS:
                continue
            value = getattr(self, spec_field.name)
            if spec_field.name == "dram":
                value = value.to_dict()
            elif spec_field.name in ("cpu_vf_points", "gfx_vf_points"):
                value = [list(pair) for pair in value]
            elif isinstance(value, tuple):
                value = list(value)
            data[spec_field.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HardwareSpec":
        """Rebuild a spec serialized with :meth:`to_dict`.

        Also accepts the legacy three-knob ``PlatformSpec`` payload
        (``{"tdp", "dram", "platform_fixed_power"}``): the constructor defaults
        fill in the Skylake description those knobs used to imply, and string
        ``dram`` names resolve through :func:`resolve_dram`.  Serialized
        payloads carry no :data:`METADATA_FIELDS`, so a rebuilt spec labels
        itself with the defaults; the hardware (and every hash) is unchanged.
        """
        return cls(**data)

    @property
    def content_hash(self) -> str:
        """Deterministic content hash of the hardware description.

        Covers every field of :meth:`to_dict` -- i.e. everything that changes
        the simulated hardware, and nothing that merely labels it.
        """
        return hashing.content_hash({"schema": HW_SCHEMA_VERSION, **self.to_dict()})
