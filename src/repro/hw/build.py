"""Materialize hardware descriptions: spec -> SoC -> assembled platform.

This module is the single bridge from the declarative layer
(:class:`~repro.hw.spec.HardwareSpec`) to the live object layer
(:class:`~repro.soc.skylake.SkylakeSoC`, :class:`~repro.sim.platform.Platform`).
Every constructor is a pure function of the spec: building the same spec twice
-- in this process, a worker process, or next week -- yields platforms that
produce bit-identical simulation results.
"""

from __future__ import annotations

from repro.hw.spec import HardwareSpec
from repro.sim.platform import Platform, assemble_platform
from repro.soc.components import (
    CpuCluster,
    DdrioInterface,
    DisplayEngine,
    GraphicsEngine,
    IoInterconnect,
    IspEngine,
    MemoryControllerComponent,
    Uncore,
)
from repro.soc.skylake import SkylakeSoC
from repro.soc.vf_curves import PStateTable, VFCurve
from repro.soc.vr import RailName, build_default_rails


def soc_from_spec(spec: HardwareSpec) -> SkylakeSoC:
    """Construct the SoC description a :class:`HardwareSpec` encodes."""
    cpu_curve = VFCurve(points=spec.cpu_vf_points)
    gfx_curve = VFCurve(points=spec.gfx_vf_points)
    return SkylakeSoC(
        name=spec.soc_name,
        tdp=spec.tdp,
        cpu=CpuCluster(
            name="cpu_cluster",
            rail=RailName.V_CORE,
            ceff=spec.cpu_ceff,
            leakage_coeff=spec.cpu_leakage_coeff,
            core_count=spec.cpu_core_count,
            threads_per_core=spec.cpu_threads_per_core,
            base_frequency=spec.cpu_base_frequency,
        ),
        gfx=GraphicsEngine(
            name="graphics_engine",
            rail=RailName.V_GFX,
            ceff=spec.gfx_ceff,
            leakage_coeff=spec.gfx_leakage_coeff,
            base_frequency=spec.gfx_base_frequency,
        ),
        uncore=Uncore(
            name="uncore",
            rail=RailName.V_CORE,
            ceff=spec.uncore_ceff,
            leakage_coeff=spec.uncore_leakage_coeff,
            llc_bytes=spec.llc_bytes,
        ),
        display=DisplayEngine(name="display_engine", rail=RailName.V_SA),
        isp=IspEngine(name="isp_engine", rail=RailName.V_SA),
        io_interconnect=IoInterconnect(
            name="io_interconnect",
            rail=RailName.V_SA,
            high_frequency=spec.io_interconnect_high_frequency,
            low_frequency=spec.io_interconnect_low_frequency,
        ),
        memory_controller=MemoryControllerComponent(
            name="memory_controller", rail=RailName.V_SA
        ),
        ddrio=DdrioInterface(name="ddrio", rail=RailName.V_IO),
        dram=spec.dram.device(),
        rails=build_default_rails(
            v_sa_nominal=spec.v_sa_nominal,
            v_io_nominal=spec.v_io_nominal,
            vddq_nominal=spec.vddq_nominal,
            v_core_nominal=spec.v_core_nominal,
            v_gfx_nominal=spec.v_gfx_nominal,
            v_sa_min_scale=spec.v_sa_low_scale,
            v_io_min_scale=spec.v_io_low_scale,
        ),
        cpu_curve=cpu_curve,
        gfx_curve=gfx_curve,
        cpu_pstates=PStateTable.from_curve(
            cpu_curve, spec.cpu_pstate_frequencies, prefix="P"
        ),
        gfx_pstates=PStateTable.from_curve(
            gfx_curve, spec.gfx_pstate_frequencies, prefix="GP"
        ),
        process_node_nm=spec.process_node_nm,
    )


def build_platform_from_spec(spec: HardwareSpec) -> Platform:
    """Assemble a complete evaluation platform from a hardware description."""
    return assemble_platform(
        soc_from_spec(spec),
        platform_fixed_power=spec.platform_fixed_power,
        mc_power_high=spec.mc_power_high,
        interconnect_power_high=spec.interconnect_power_high,
        io_engines_power_high=spec.io_engines_power_high,
        ddrio_digital_power_high=spec.ddrio_digital_power_high,
        dram_background_power_high=spec.dram_background_power_high,
        dram_background_frequency_fraction=spec.dram_background_frequency_fraction,
        dram_operation_energy_per_byte=spec.dram_operation_energy_per_byte,
        dram_self_refresh_power=spec.dram_self_refresh_power,
    )
