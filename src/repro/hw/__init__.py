"""Declarative, registry-backed hardware descriptions (``repro.hw``).

The package has three layers:

* :mod:`repro.hw.spec` -- the :class:`HardwareSpec` / :class:`DramSpec` value
  objects: frozen, JSON-serializable, content-hashable descriptions of an
  entire platform (SoC, power coefficients, VR rails, V/F curves, DRAM, TDP);
* :mod:`repro.hw.registry` -- the named catalog (``skylake``, ``broadwell``,
  derived variants) and the :meth:`HardwareSpec.derive` delta mechanism;
* :mod:`repro.hw.build` -- materialization: spec -> SoC -> assembled
  :class:`~repro.sim.platform.Platform`, bit-identical per spec.

``repro.runtime.jobs.PlatformSpec`` is an alias of :class:`HardwareSpec`, so
job content hashes cover the full hardware description and arbitrary variants
cache, deduplicate, and parallelize like any other job dimension.
"""

from repro.hw.build import build_platform_from_spec, soc_from_spec
from repro.hw.registry import (
    BROADWELL,
    HARDWARE,
    SKYLAKE,
    get_hardware,
    register_hardware,
    resolve_hardware,
)
from repro.hw.spec import (
    DRAM_SPECS,
    HW_SCHEMA_VERSION,
    DramSpec,
    HardwareSpec,
    resolve_dram,
)

__all__ = [
    "BROADWELL",
    "DRAM_SPECS",
    "DramSpec",
    "HARDWARE",
    "HW_SCHEMA_VERSION",
    "HardwareSpec",
    "SKYLAKE",
    "build_platform_from_spec",
    "get_hardware",
    "register_hardware",
    "resolve_dram",
    "resolve_hardware",
    "soc_from_spec",
]
