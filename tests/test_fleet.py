"""The repro.fleet subsystem: queue, batching, store, autoscaler, service."""

import json
from pathlib import Path

import pytest

from repro.fleet import (
    Autoscaler,
    AutoscalerConfig,
    BatchingExecutor,
    FleetConfig,
    FleetService,
    JobQueue,
    ShardedResultStore,
    fleet_status,
    plan_batches,
    submit_campaign,
    sweep_spec_hash,
    verify_campaign,
)
from repro.fleet.autoscaler import sample_from_snapshot
from repro.fleet.queue import (
    STATE_DONE,
    STATE_FAILED,
    STATE_LEASED,
    STATE_QUEUED,
)
from repro.fleet.service import FleetPaths, resolve_campaign
from repro.hashing import content_hash
from repro.runtime import (
    Campaign,
    PlatformSpec,
    PolicySpec,
    SerialExecutor,
    SimSpec,
    SimulationJob,
    TraceSpec,
)
from repro.runtime.jobs import SCHEMA_VERSION

FIXTURES = Path(__file__).parent / "fixtures" / "fleet"

#: A fast simulation spec: 50 ticks, one or two evaluation intervals.
TINY_SIM = SimSpec(max_simulated_time=0.05)


def _tiny_job(name="470.lbm", policy="baseline", tdp=4.5):
    return SimulationJob(
        trace=TraceSpec.make("spec", name=name, duration=0.05),
        policy=PolicySpec.make(policy),
        platform=PlatformSpec(tdp=tdp),
        sim=TINY_SIM,
    )


def _tiny_campaign(name="fleet-tiny"):
    return Campaign(
        name=name,
        jobs=(
            _tiny_job(policy="baseline"),
            _tiny_job(policy="sysscale"),
            _tiny_job(name="433.milc", policy="sysscale"),
        ),
    )


# ---------------------------------------------------------------------------
# JobQueue: lease / timeout / requeue
# ---------------------------------------------------------------------------


class TestJobQueue:
    def test_dispatch_order_is_priority_then_fifo(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        low = queue.submit(_tiny_job(policy="baseline"), priority=0)
        high = queue.submit(_tiny_job(policy="sysscale"), priority=5)
        ordered = queue.entries()
        assert [e.job_hash for e in ordered] == [high.job_hash, low.job_hash]
        assert low.seq < high.seq  # FIFO seq still records submission order

    def test_lease_claims_and_stamps_deadline(self, tmp_path):
        queue = JobQueue(tmp_path / "q", lease_timeout=30.0)
        entry = queue.submit(_tiny_job())
        leased = queue.lease(limit=4, worker="w1", now=100.0)
        assert [e.job_hash for e in leased] == [entry.job_hash]
        assert leased[0].state == STATE_LEASED
        assert leased[0].attempts == 1
        assert leased[0].lease_deadline == pytest.approx(130.0)
        assert leased[0].worker == "w1"
        # Nothing queued is left, so a second lease finds nothing.
        assert queue.lease(limit=4, worker="w2", now=101.0) == []

    def test_expired_lease_requeues_with_attempt_spent(self, tmp_path):
        queue = JobQueue(tmp_path / "q", lease_timeout=30.0, max_attempts=2)
        entry = queue.submit(_tiny_job())
        queue.lease(limit=1, worker="w1", now=100.0)
        # Before the deadline nothing is recovered.
        assert queue.requeue_expired(now=120.0) == 0
        assert queue.get(entry.job_hash).state == STATE_LEASED
        # Past the deadline the entry goes back to queued, attempt spent.
        assert queue.requeue_expired(now=131.0) == 1
        requeued = queue.get(entry.job_hash)
        assert requeued.state == STATE_QUEUED
        assert requeued.attempts == 1
        assert "lease expired" in requeued.error

    def test_exhausted_attempts_fail_terminally(self, tmp_path):
        queue = JobQueue(tmp_path / "q", lease_timeout=30.0, max_attempts=2)
        entry = queue.submit(_tiny_job())
        queue.lease(limit=1, worker="w1", now=100.0)
        queue.requeue_expired(now=131.0)
        queue.lease(limit=1, worker="w1", now=200.0)
        queue.requeue_expired(now=231.0)  # second attempt spent -> exhausted
        dead = queue.get(entry.job_hash)
        assert dead.state == STATE_FAILED
        assert dead.attempts == 2
        counts = queue.counts()
        assert counts[STATE_FAILED] == 1
        assert queue.drained()  # failed entries neither wait nor run

    def test_complete_is_idempotent(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        entry = queue.submit(_tiny_job())
        queue.lease(limit=1, now=100.0)
        first = queue.complete(entry.job_hash)
        again = queue.complete(entry.job_hash)
        assert first.state == again.state == STATE_DONE
        assert again.lease_deadline is None

    def test_fail_requeues_until_attempts_run_out(self, tmp_path):
        queue = JobQueue(tmp_path / "q", max_attempts=2)
        entry = queue.submit(_tiny_job())
        queue.lease(limit=1, now=100.0)
        failed = queue.fail(entry.job_hash, error="boom", now=100.0)
        assert failed.state == STATE_QUEUED
        # A failed attempt schedules a backoff window before the retry.
        assert failed.not_before is not None and failed.not_before > 100.0
        assert queue.lease(limit=1, now=100.0) == []  # still backing off
        assert len(queue.lease(limit=1, now=failed.not_before + 0.01)) == 1
        assert (
            queue.fail(entry.job_hash, error="boom", now=200.0).state
            == STATE_FAILED
        )

    def test_entries_survive_reopen(self, tmp_path):
        root = tmp_path / "q"
        JobQueue(root).submit(_tiny_job(), priority=3)
        reopened = JobQueue(root)
        [entry] = reopened.entries()
        assert entry.priority == 3
        assert entry.state == STATE_QUEUED
        assert entry.build_job() == _tiny_job()


# ---------------------------------------------------------------------------
# Dedup against a pre-populated store
# ---------------------------------------------------------------------------


class TestSubmitDedup:
    def test_store_hit_lands_straight_in_done(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store")
        job = _tiny_job()
        store.put_job(job, {"answer": 42})
        queue = JobQueue(tmp_path / "q")
        entry = queue.submit(job, store=store)
        assert entry.state == STATE_DONE
        assert entry.note == "store-hit"
        assert queue.drained()

    def test_submit_many_accounts_each_dedup_kind(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store")
        answered = _tiny_job(policy="sysscale")
        store.put_job(answered, {"answer": 42})
        queue = JobQueue(tmp_path / "q")
        fresh = _tiny_job()
        queue.submit(fresh)  # already live in the queue
        accounting = queue.submit_many(
            [fresh, answered, _tiny_job(name="433.milc")], store=store
        )
        assert accounting == {
            "enqueued": 1,
            "deduped_store": 1,
            "deduped_queue": 1,
        }

    def test_resubmit_returns_existing_entry_unchanged(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        first = queue.submit(_tiny_job())
        again = queue.submit(_tiny_job())
        assert again.seq == first.seq
        assert again.state == STATE_QUEUED

    def test_failed_entry_is_resubmittable(self, tmp_path):
        queue = JobQueue(tmp_path / "q", max_attempts=1)
        entry = queue.submit(_tiny_job())
        queue.lease(limit=1, now=100.0)
        queue.fail(entry.job_hash, error="boom")
        fresh = queue.submit(_tiny_job())
        assert fresh.state == STATE_QUEUED
        assert fresh.attempts == 0


# ---------------------------------------------------------------------------
# Batching plans
# ---------------------------------------------------------------------------


class TestBatchPlan:
    def test_explicit_batch_size_slices_evenly(self):
        jobs = [_tiny_job(tdp=3.0 + i / 10) for i in range(16)]
        plan = plan_batches(jobs, batch_size=8, workers=2)
        assert plan.batches == (8, 8)
        assert plan.dispatches == 2
        assert plan.jobs == 16
        assert plan.amortization == 8.0

    def test_ragged_tail_batch(self):
        jobs = [_tiny_job(tdp=3.0 + i / 10) for i in range(10)]
        plan = plan_batches(jobs, batch_size=4)
        assert plan.batches == (4, 4, 2)

    def test_auto_sizing_matches_executor(self):
        from repro.runtime.executor import auto_batch_size

        jobs = [_tiny_job(tdp=3.0 + i / 10) for i in range(24)]
        plan = plan_batches(jobs, workers=2)
        assert plan.batch_size == auto_batch_size(24, 2)
        assert plan.jobs == 24

    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ValueError):
            plan_batches([_tiny_job()], batch_size=0)


# ---------------------------------------------------------------------------
# Autoscaler: decision table replayed from a recorded time series
# ---------------------------------------------------------------------------


class TestAutoscaler:
    #: (action, workers-after) per sample of timeseries_ramp.jsonl, with the
    #: reason fragment asserted for the interesting transitions.
    RAMP_EXPECTED = [
        ("hold", 2, "streak 1/2"),
        ("hold", 2, "streak 0/2"),
        ("hold", 2, "streak 1/2"),
        ("scale_up", 4, "for 2 consecutive samples"),
        ("hold", 4, "streak 1/2"),
        ("hold", 4, "cooling down (1.0s < 2.0s)"),
        ("hold", 4, "cooling down (1.5s < 2.0s)"),
        ("hold", 4, "already at max_workers=4"),
        ("hold", 4, "streak 1/2"),
        ("hold", 4, "cooling down (3.0s < 10.0s)"),
        ("scale_down", 3, "for 3 consecutive samples"),
        ("hold", 3, "streak 1/2"),
        ("hold", 3, "cooling down (1.0s < 10.0s)"),
        ("scale_down", 2, "for 3 consecutive samples"),
        ("hold", 2, "streak 1/2"),
        ("scale_down", 1, "for 2 consecutive samples"),
        ("hold", 1, "streak 1/2"),
        ("hold", 1, "already at min_workers=1"),
    ]

    def _ramp_samples(self):
        with (FIXTURES / "timeseries_ramp.jsonl").open() as handle:
            return [json.loads(line) for line in handle if line.strip()]

    def test_ramp_fixture_decision_table(self):
        scaler = Autoscaler()  # workers=0: adopt the first sample's gauge
        samples = self._ramp_samples()
        assert len(samples) == len(self.RAMP_EXPECTED)
        for sample, (action, workers, reason) in zip(
            samples, self.RAMP_EXPECTED
        ):
            decision = scaler.observe(sample)
            context = f"sample seq={sample['seq']} t={sample['t']}"
            assert decision.action == action, context
            assert decision.workers == workers, context
            assert reason in decision.reason, context
            assert decision.at == sample["t"]
        assert scaler.workers == 1
        assert len(scaler.decisions) == len(samples)

    def test_replay_is_deterministic(self):
        runs = []
        for _ in range(2):
            scaler = Autoscaler()
            for sample in self._ramp_samples():
                scaler.observe(sample)
            runs.append(
                [(d.action, d.workers, d.reason, d.at) for d in scaler.decisions]
            )
        assert runs[0] == runs[1]

    def test_spike_does_not_scale(self):
        scaler = Autoscaler(workers=2)
        scaler.observe({"t": 0.0, "queue_depth": 50})
        decision = scaler.observe({"t": 0.5, "queue_depth": 0})
        assert decision.action == "hold"
        assert scaler.workers == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_workers=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_workers=4, max_workers=2)
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_down_depth=9.0, scale_up_depth=8.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(sustained_readings=0)

    def test_sample_from_snapshot_maps_executor_gauges(self):
        snapshot = {
            "gauges": {
                "executor.queue_depth": 7.0,
                "executor.in_flight": 2.0,
                "executor.workers": 3.0,
            }
        }
        sample = sample_from_snapshot(snapshot, t=12.5)
        assert sample == {
            "t": 12.5,
            "queue_depth": 7.0,
            "in_flight": 2.0,
            "workers": 3.0,
        }


# ---------------------------------------------------------------------------
# Sharded store: migration from a flat cache directory
# ---------------------------------------------------------------------------


class TestStoreMigration:
    def _flat_entry(self, directory, job, payload):
        entry = {
            "schema": SCHEMA_VERSION,
            "hash": job.content_hash,
            "job": job.to_dict(),
            "result": payload,
        }
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"{job.content_hash}.json").write_text(json.dumps(entry))

    def test_flat_directory_migrates_into_shards(self, tmp_path):
        flat = tmp_path / "old-cache"
        jobs = [_tiny_job(), _tiny_job(policy="sysscale")]
        for index, job in enumerate(jobs):
            self._flat_entry(flat, job, {"answer": index})
        store = ShardedResultStore(tmp_path / "store")
        assert store.migrate_flat(source=flat) == 2
        for index, job in enumerate(jobs):
            assert store.has_job(job.content_hash)
            assert store.job_payload(job.content_hash) == {"answer": index}
            # The entry sits in its two-character prefix shard...
            path = store.job_path(job.content_hash)
            assert path.parent.name == job.content_hash[:2]
            # ...and reads back through the plain runtime cache unchanged.
            assert store.job_cache().get(job) == {"answer": index}
        assert not list(flat.glob("*.json"))  # moved, not copied

    def test_in_place_adoption_of_flat_job_namespace(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store")
        job = _tiny_job()
        self._flat_entry(store.jobs_root, job, {"answer": 7})
        assert not store.has_job(job.content_hash)  # flat entry is invisible
        assert store.migrate_flat() == 1
        assert store.job_payload(job.content_hash) == {"answer": 7}

    def test_migrate_is_idempotent(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store")
        job = _tiny_job()
        self._flat_entry(store.jobs_root, job, {"answer": 7})
        assert store.migrate_flat() == 1
        assert store.migrate_flat() == 0
        assert store.stats()["jobs"] == 1


# ---------------------------------------------------------------------------
# Sweep identity and reports
# ---------------------------------------------------------------------------


class TestSweepIdentity:
    def test_spec_hash_is_stable_and_sensitive(self):
        campaign = _tiny_campaign()
        assert sweep_spec_hash(campaign) == sweep_spec_hash(_tiny_campaign())
        capped = campaign.with_sim(SimSpec(max_simulated_time=0.04))
        assert sweep_spec_hash(capped) != sweep_spec_hash(campaign)
        renamed = Campaign(name="other", jobs=campaign.jobs)
        assert sweep_spec_hash(renamed) != sweep_spec_hash(campaign)

    def test_resolve_campaign_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="unknown campaign"):
            resolve_campaign("no-such-campaign")

    def test_resolve_campaign_caps_simulated_time(self):
        campaign = resolve_campaign("scenarios", quick=True, max_time=0.05)
        assert campaign.jobs
        assert all(
            job.sim.max_simulated_time == 0.05
            for job in campaign.jobs
            if isinstance(job, SimulationJob)
        )


# ---------------------------------------------------------------------------
# End to end: fleet-run sweep is bit-identical to a serial sweep
# ---------------------------------------------------------------------------


class TestFleetBitIdentity:
    def _drain_config(self, root, **overrides):
        settings = {
            "root": root,
            "workers": 2,
            "batch_size": 2,
            "poll_interval": 0.01,
            "drain": True,
            "drain_grace": 5.0,
        }
        settings.update(overrides)
        return FleetConfig(**settings)

    def test_cold_fleet_sweep_matches_serial(self, tmp_path):
        root = tmp_path / "fleet"
        campaign = _tiny_campaign()
        summary = submit_campaign(root, campaign)
        assert summary["warm_start"] is False
        assert summary["enqueued"] == len(campaign.jobs)

        service = FleetService(self._drain_config(root))
        outcome = service.serve_forever()
        assert outcome["drained"] is True
        assert outcome["jobs_run"] == len(campaign.jobs)
        assert outcome["reports_finalized"] == 1

        verdict = verify_campaign(root, campaign)
        assert verdict["missing"] == []
        assert verdict["mismatched"] == []
        assert verdict["report_ok"] is True
        assert verdict["ok"] is True

        status = fleet_status(root)
        assert status["drained"] is True
        assert status["queue"]["done"] == len(campaign.jobs)
        [manifest] = status["campaigns"]
        assert manifest["reported"] is True
        assert manifest["landed"] == len(campaign.jobs)

    def test_warm_resubmission_runs_nothing(self, tmp_path):
        root = tmp_path / "fleet"
        campaign = _tiny_campaign()
        submit_campaign(root, campaign)
        FleetService(self._drain_config(root)).serve_forever()

        # Report-level warm start: nothing is enqueued at all.
        summary = submit_campaign(root, campaign)
        assert summary["warm_start"] is True
        assert summary["enqueued"] == 0
        assert verify_campaign(root, campaign)["ok"] is True

        # Job-level warm start: drop the report but keep the results; the
        # resubmission dedups every job against the store and the service
        # rebuilds the report without executing anything.
        store = ShardedResultStore(FleetPaths(root).store_dir)
        store.report_path(summary["spec_hash"]).unlink()
        summary = submit_campaign(root, campaign)
        assert summary["warm_start"] is False
        assert summary["enqueued"] == 0
        assert summary["deduped_store"] + summary["deduped_queue"] == len(
            campaign.jobs
        )
        service = FleetService(self._drain_config(root))
        outcome = service.serve_forever()
        assert outcome["jobs_run"] == 0
        assert outcome["reports_finalized"] == 1
        assert verify_campaign(root, campaign)["ok"] is True

    def test_batching_executor_matches_serial(self, tmp_path):
        jobs = list(_tiny_campaign().jobs)
        serial = SerialExecutor().run(jobs)
        with BatchingExecutor(max_workers=2, batch_size=2) as pool:
            batched = pool.run(jobs)
        for ours, theirs in zip(batched.outcomes, serial.outcomes):
            assert ours.job.content_hash == theirs.job.content_hash
            assert content_hash(ours.payload) == content_hash(theirs.payload)

    def test_executor_failure_degrades_instead_of_raising(self, tmp_path):
        root = tmp_path / "fleet"
        campaign = _tiny_campaign()
        submit_campaign(root, campaign)
        service = FleetService(self._drain_config(root, workers=1))

        def explode(jobs, cache=None, on_error=None, pre_hook=None):
            raise RuntimeError("worker lost")

        service.executor.run = explode
        # The poll absorbs the infrastructure failure: nothing propagates,
        # no job completes, and every leased entry is requeued (attempt
        # charged, backoff scheduled) rather than killed.
        assert service.run_once(now=100.0) == 0
        counts = service.queue.counts()
        assert counts[STATE_QUEUED] == len(campaign.jobs)
        entry = service.queue.entries()[0]
        assert "worker lost" in entry.error
        assert entry.not_before is not None and entry.not_before > 100.0
        service.executor.close()
