"""Tests for the synthetic calibration/evaluation corpus."""

import pytest

from repro.workloads.corpus import CorpusGenerator, iter_traces
from repro.workloads.trace import WorkloadClass


@pytest.fixture(scope="module")
def generator():
    return CorpusGenerator(seed=123)


class TestCorpusGenerator:
    def test_default_corpus_size(self, generator):
        corpus = generator.generate()
        assert len(corpus) == 540

    def test_deterministic_for_seed(self):
        first = CorpusGenerator(seed=7).generate(single_thread=20, multi_thread=10, graphics=10)
        second = CorpusGenerator(seed=7).generate(single_thread=20, multi_thread=10, graphics=10)
        assert [w.memory_sensitivity for w in first] == [w.memory_sensitivity for w in second]

    def test_different_seeds_differ(self):
        first = CorpusGenerator(seed=1).generate_class(WorkloadClass.CPU_SINGLE_THREAD, 20)
        second = CorpusGenerator(seed=2).generate_class(WorkloadClass.CPU_SINGLE_THREAD, 20)
        assert [w.memory_sensitivity for w in first] != [w.memory_sensitivity for w in second]

    def test_class_generation(self, generator):
        graphics = generator.generate_class(WorkloadClass.GRAPHICS, 25)
        assert len(graphics) == 25
        assert all(w.workload_class is WorkloadClass.GRAPHICS for w in graphics)
        assert all(w.trace.phases[0].gfx_fraction > 0.5 for w in graphics)

    def test_battery_class_not_supported(self, generator):
        with pytest.raises(ValueError):
            generator.generate_class(WorkloadClass.BATTERY_LIFE, 5)

    def test_sensitivity_spans_a_wide_range(self, generator):
        corpus = generator.generate_class(WorkloadClass.CPU_SINGLE_THREAD, 200)
        sensitivities = [w.memory_sensitivity for w in corpus]
        assert min(sensitivities) < 0.1
        assert max(sensitivities) > 0.5

    def test_single_thread_uses_one_core(self, generator):
        corpus = generator.generate_class(WorkloadClass.CPU_SINGLE_THREAD, 10)
        assert all(w.trace.phases[0].active_cores == 1 for w in corpus)

    def test_train_eval_split_is_disjoint(self, generator):
        corpus = generator.generate(single_thread=40, multi_thread=20, graphics=20)
        train, evaluation = generator.train_eval_split(corpus, train_fraction=0.5)
        assert len(train) + len(evaluation) == len(corpus)
        train_names = {w.trace.name for w in train}
        eval_names = {w.trace.name for w in evaluation}
        assert not train_names & eval_names

    def test_invalid_split_fraction(self, generator):
        with pytest.raises(ValueError):
            generator.train_eval_split([], train_fraction=1.5)

    def test_iter_traces(self, generator):
        corpus = generator.generate_class(WorkloadClass.CPU_MULTI_THREAD, 5)
        assert len(list(iter_traces(corpus))) == 5

    def test_all_phases_are_valid(self, generator):
        corpus = generator.generate(single_thread=30, multi_thread=15, graphics=15)
        for workload in corpus:
            for phase in workload.trace.phases:
                assert abs(sum(phase.fraction_vector()) - 1.0) < 1e-6
