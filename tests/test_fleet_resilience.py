"""Failure semantics: fault injection, backoff, quarantine, doctor, gc."""

import json
import os
import time
from pathlib import Path

import pytest

from repro.fleet import (
    FaultPlan,
    FaultRule,
    FleetConfig,
    FleetService,
    JobQueue,
    Quarantine,
    ShardedResultStore,
    backoff_seconds,
    run_doctor,
    submit_campaign,
    verify_campaign,
)
from repro.fleet.faults import InjectedFault, InjectedOSError
from repro.fleet.queue import (
    STATE_DONE,
    STATE_FAILED,
    STATE_LEASED,
    STATE_QUEUED,
)
from repro.fleet.resilience import FailureRecord
from repro.fleet.service import FleetPaths
from repro.runtime import (
    Campaign,
    PlatformSpec,
    PolicySpec,
    SimSpec,
    SimulationJob,
    TraceSpec,
)

FIXTURES = Path(__file__).parent / "fixtures" / "fleet"

TINY_SIM = SimSpec(max_simulated_time=0.05)


def _tiny_job(name="470.lbm", policy="baseline", tdp=4.5):
    return SimulationJob(
        trace=TraceSpec.make("spec", name=name, duration=0.05),
        policy=PolicySpec.make(policy),
        platform=PlatformSpec(tdp=tdp),
        sim=TINY_SIM,
    )


def _tiny_campaign(name="resilience-tiny"):
    return Campaign(
        name=name,
        jobs=(
            _tiny_job(policy="baseline"),
            _tiny_job(policy="sysscale"),
            _tiny_job(name="433.milc", policy="sysscale"),
        ),
    )


def _drain_config(root, faults=None, **overrides):
    settings = {
        "root": root,
        "workers": 1,
        "poll_interval": 0.01,
        "drain": True,
        "drain_grace": 5.0,
        "autoscale": False,
        "faults": faults,
    }
    settings.update(overrides)
    return FleetConfig(**settings)


# ---------------------------------------------------------------------------
# FaultPlan: parsing, decisions, determinism
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_round_trips_through_describe(self):
        spec = "seed=42;torn@queue.write=0.25;hang@job=0.1:0.05;crash@job[ab12]=1"
        plan = FaultPlan.parse(spec)
        assert plan.seed == 42
        assert len(plan.rules) == 3
        assert plan.rules[1] == FaultRule(
            kind="hang", op="job", rate=0.1, param=0.05
        )
        assert plan.rules[2].match == "ab12"
        assert FaultPlan.parse(plan.describe()).rules == plan.rules

    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate@queue.write=0.5",  # unknown kind
            "torn@job=0.5",  # kind/op mismatch
            "crash@job=1.5",  # rate out of range
            "torn@queue.write",  # missing rate
            "torn=0.5",  # missing op
            "torn@queue.write=abc",  # non-numeric
        ],
    )
    def test_invalid_specs_are_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_decisions_are_pure_functions_of_seed_and_key(self):
        spec = "seed=9;crash@job=0.5"
        pairs = [(f"{i:02d}" * 20, 1) for i in range(20)]
        first = FaultPlan.parse(spec).job_directives(pairs)
        second = FaultPlan.parse(spec).job_directives(pairs)
        assert first == second
        assert 0 < len(first) < len(pairs)  # some fire, some don't
        # A different seed decides differently somewhere.
        other = FaultPlan.parse("seed=10;crash@job=0.5").job_directives(pairs)
        assert other != first

    def test_job_directives_are_order_independent(self):
        pairs = [(f"{i:02d}" * 20, 1) for i in range(10)]
        forward = FaultPlan.parse("seed=3;raise@job=0.5").job_directives(pairs)
        backward = FaultPlan.parse("seed=3;raise@job=0.5").job_directives(
            list(reversed(pairs))
        )
        assert forward == backward

    def test_retry_attempt_gets_a_fresh_decision(self):
        plan = FaultPlan.parse("seed=1;raise@job=0.5")
        job_hash = "ab" * 20
        outcomes = {
            attempt: bool(plan.job_directives([(job_hash, attempt)]))
            for attempt in range(1, 30)
        }
        assert True in outcomes.values() and False in outcomes.values()

    def test_match_prefix_pins_a_poison_job(self):
        target = "aa" * 20
        bystander = "bb" * 20
        plan = FaultPlan.parse(f"seed=0;crash@job[{target[:8]}]=1.0")
        directives = plan.job_directives([(target, 1), (bystander, 1)])
        assert directives == {target: ("crash", 0.0)}

    def test_torn_write_leaves_invalid_json(self, tmp_path):
        plan = FaultPlan.parse("seed=0;torn@queue.write=1.0")
        path = tmp_path / "entry.json"
        assert plan.intercept_write("queue.write", path, {"k": "v" * 50}) == "torn"
        with pytest.raises(ValueError):
            json.loads(path.read_text(encoding="utf-8"))

    def test_skip_write_loses_the_rename_but_keeps_the_tmp(self, tmp_path):
        plan = FaultPlan.parse("seed=0;skip@queue.write=1.0")
        path = tmp_path / "entry.json"
        path.write_text('{"old": true}', encoding="utf-8")
        assert plan.intercept_write("queue.write", path, {"new": True}) == "skip"
        # The destination is untouched (the "crash" hit before os.replace)...
        assert json.loads(path.read_text(encoding="utf-8")) == {"old": True}
        # ...and the orphaned temp file is left behind for gc/doctor to sweep.
        assert list(tmp_path.glob("*.tmp"))

    def test_oserror_rules_raise(self, tmp_path):
        writer = FaultPlan.parse("seed=0;oserror@queue.write=1.0")
        with pytest.raises(InjectedOSError):
            writer.intercept_write("queue.write", tmp_path / "e.json", {})
        reader = FaultPlan.parse("seed=0;oserror@queue.read=1.0")
        with pytest.raises(InjectedOSError):
            reader.intercept_read("queue.read", tmp_path / "e.json")

    def test_event_log_replays_identically(self, tmp_path):
        """The pinned determinism table: one synthetic op sequence, driven
        twice, must produce byte-identical event logs -- and match the
        committed fixture so cross-platform or cross-version drift fails
        loudly."""
        events_a = self._drive(tmp_path / "a")
        events_b = self._drive(tmp_path / "b")
        assert events_a == events_b
        assert events_a  # the table is not vacuously empty
        fixture = json.loads(
            (FIXTURES / "fault_plan_events.json").read_text(encoding="utf-8")
        )
        assert events_a == fixture

    @staticmethod
    def _drive(root: Path):
        root.mkdir(parents=True, exist_ok=True)
        plan = FaultPlan.parse(
            "seed=3;torn@queue.write=0.3;skip@store.write=0.4;"
            "oserror@queue.read=0.25;expire@queue.lease=0.5;"
            "crash@job=0.4;hang@job=0.3:0.01"
        )
        for i in range(8):
            plan.intercept_write(
                "queue.write", root / f"e{i}.json", {"i": i, "pad": "x" * 40}
            )
        for i in range(6):
            plan.intercept_write(
                "store.write", root / f"r{i}.json", {"i": i, "pad": "y" * 40}
            )
        for i in range(8):
            try:
                plan.intercept_read("queue.read", root / f"e{i}.json")
            except OSError:
                pass
        for i in range(4):
            plan.lease_expired(f"{i:02d}" * 20, attempt=1)
        plan.job_directives(
            [(f"{i:02d}" * 20, attempt) for attempt in (1, 2) for i in range(6)]
        )
        return plan.events


# ---------------------------------------------------------------------------
# Deterministic backoff
# ---------------------------------------------------------------------------


class TestBackoff:
    def test_backoff_is_deterministic_and_exponential(self):
        job_hash = "cd" * 20
        first = backoff_seconds(job_hash, 1)
        assert first == backoff_seconds(job_hash, 1)
        # Base delay doubles per attempt; jitter stays within [1x, 1.5x).
        for attempt in range(1, 6):
            delay = backoff_seconds(job_hash, attempt)
            base = 0.25 * 2 ** (attempt - 1)
            assert base <= delay < base * 1.5

    def test_backoff_caps(self):
        assert backoff_seconds("ef" * 20, 30, cap=30.0) < 30.0 * 1.5

    def test_backoff_decorrelates_jobs(self):
        delays = {backoff_seconds(f"{i:02d}" * 20, 1) for i in range(10)}
        assert len(delays) == 10  # no thundering herd

    def test_attempt_zero_is_immediate(self):
        assert backoff_seconds("ab" * 20, 0) == 0.0


# ---------------------------------------------------------------------------
# Queue crash consistency
# ---------------------------------------------------------------------------


class TestQueueCrashConsistency:
    def test_corrupt_entry_is_counted_not_swallowed(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        entry = queue.submit(_tiny_job())
        path = queue.entries_dir / f"{entry.job_hash}.json"
        path.write_text('{"schema": 1, "job_hash"', encoding="utf-8")
        counts = queue.counts()
        assert counts["corrupt"] == 1
        assert counts[STATE_QUEUED] == 0
        entries, corrupt, transient = queue.scan()
        assert entries == [] and corrupt == [path] and transient == []

    def test_wrong_schema_reads_as_corrupt(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        entry = queue.submit(_tiny_job())
        path = queue.entries_dir / f"{entry.job_hash}.json"
        data = json.loads(path.read_text(encoding="utf-8"))
        data["schema"] = 999
        path.write_text(json.dumps(data), encoding="utf-8")
        assert queue.counts()["corrupt"] == 1

    def test_torn_write_faults_are_healed_by_fallback(self, tmp_path):
        # Every queue write is torn, yet complete() still lands durably,
        # because the caller's in-memory entry is the recovery source and
        # the healing write itself is retried at the atomic-write layer...
        # here we tear only the *lease* write and heal on complete.
        queue = JobQueue(tmp_path / "q")
        entry = queue.submit(_tiny_job())
        queue.faults = FaultPlan.parse("seed=0;torn@queue.write=1.0")
        [leased] = queue.lease(limit=1, now=100.0)
        assert queue.counts()["corrupt"] == 1  # the lease write was torn
        queue.faults = None
        finished = queue.complete(leased.job_hash, fallback=leased)
        assert finished.state == STATE_DONE
        counts = queue.counts()
        assert counts["corrupt"] == 0 and counts[STATE_DONE] == 1

    def test_lost_write_keeps_old_state_and_strays_a_tmp(self, tmp_path):
        # The kill-between-tmp-write-and-rename shape: the destination keeps
        # its pre-crash bytes, the temp file survives as an orphan.
        queue = JobQueue(tmp_path / "q")
        entry = queue.submit(_tiny_job())
        queue.faults = FaultPlan.parse("seed=0;skip@queue.write=1.0")
        queue.lease(limit=1, now=100.0)
        queue.faults = None
        on_disk = queue.get(entry.job_hash)
        assert on_disk.state == STATE_QUEUED  # the lease write never landed
        assert list(queue.entries_dir.glob("*.tmp"))

    def test_requeue_expired_racing_lease_loses_nothing(self, tmp_path):
        # Worker w1's lease expires; the entry is requeued and re-leased by
        # w2; w1 finally finishes and completes with its stale entry.  The
        # result is one done entry -- no loss, no duplicate.
        queue = JobQueue(tmp_path / "q", lease_timeout=30.0)
        entry = queue.submit(_tiny_job())
        [stale] = queue.lease(limit=1, worker="w1", now=100.0)
        assert queue.requeue_expired(now=200.0) == 1
        requeued = queue.get(entry.job_hash)
        assert requeued.state == STATE_QUEUED and requeued.attempts == 1
        [fresh] = queue.lease(limit=1, worker="w2", now=300.0)
        assert fresh.attempts == 2
        # w1 lands late with its stale lease record.
        done = queue.complete(stale.job_hash, fallback=stale)
        assert done.state == STATE_DONE
        counts = queue.counts()
        assert counts[STATE_DONE] == 1 and counts[STATE_LEASED] == 0

    def test_release_refunds_the_attempt(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        entry = queue.submit(_tiny_job())
        [leased] = queue.lease(limit=1, now=100.0)
        assert leased.attempts == 1
        released = queue.release(entry.job_hash, note="pool-suspect")
        assert released.state == STATE_QUEUED
        assert released.attempts == 0
        assert released.not_before is None  # immediately leasable
        assert released.note == "pool-suspect"

    def test_forced_lease_expiry_fault(self, tmp_path):
        queue = JobQueue(
            tmp_path / "q",
            faults=FaultPlan.parse("seed=0;expire@queue.lease=1.0"),
        )
        queue.submit(_tiny_job())
        [leased] = queue.lease(limit=1, now=100.0)
        assert leased.lease_deadline < 100.0  # handed out already expired
        assert queue.requeue_expired(now=100.0) == 1

    def test_transient_read_errors_hide_entries_without_corrupting(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit(_tiny_job())
        queue.faults = FaultPlan.parse("seed=0;oserror@queue.read=1.0")
        entries, corrupt, transient = queue.scan()
        assert entries == [] and corrupt == []  # invisible, not corrupt
        assert len(transient) == 1  # ...but the degradation is reported
        queue.faults = None
        assert len(queue.entries()) == 1  # next scan sees it again

    def test_degraded_scan_never_reads_as_drained(self, tmp_path):
        # A transient read blip hides the only queued entry; a draining
        # service trusting that scan would exit with work still on disk.
        # drained() must stay conservative until the scan settles.
        queue = JobQueue(tmp_path / "q")
        queue.submit(_tiny_job())
        queue.faults = FaultPlan.parse("seed=0;oserror@queue.read=1.0")
        counts = queue.counts()
        assert counts[STATE_QUEUED] == 0 and counts["transient"] == 1
        assert not queue.drained()
        queue.faults = None
        assert queue.counts()["transient"] == 0
        assert not queue.drained()  # still queued, now visibly so

    def test_scan_settled_retries_past_transient_blips(self, tmp_path):
        # Rate 0.5 makes individual scans flaky; scan_settled retries until
        # one comes back clean, so doctor-grade readers see the entry.
        queue = JobQueue(tmp_path / "q")
        queue.submit(_tiny_job())
        queue.faults = FaultPlan.parse("seed=2;oserror@queue.read=0.5")
        entries, corrupt = queue.scan_settled(attempts=20)
        assert len(entries) == 1 and corrupt == []

    def test_scan_settled_gives_up_on_persistent_failures(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        entry = queue.submit(_tiny_job())
        queue.faults = FaultPlan.parse("seed=0;oserror@queue.read=1.0")
        entries, corrupt = queue.scan_settled(attempts=3)
        assert entries == []
        assert corrupt == [queue.entries_dir / f"{entry.job_hash}.json"]


# ---------------------------------------------------------------------------
# Queue GC
# ---------------------------------------------------------------------------


class TestQueueGC:
    def _aged(self, path: Path, age: float) -> None:
        stamp = time.time() - age
        os.utime(path, (stamp, stamp))

    def test_gc_removes_old_terminal_entries_only(self, tmp_path):
        queue = JobQueue(tmp_path / "q", max_attempts=1)
        done = queue.submit(_tiny_job(policy="baseline"))
        failed = queue.submit(_tiny_job(policy="sysscale"))
        live = queue.submit(_tiny_job(name="433.milc"))
        queue.lease(limit=2, now=100.0)
        queue.complete(done.job_hash)
        queue.fail(failed.job_hash, error="boom", now=100.0)
        for entry in (done, failed, live):
            self._aged(queue.entries_dir / f"{entry.job_hash}.json", 7200.0)
        summary = queue.gc(ttl=3600.0)
        assert summary["removed_done"] == 1
        assert summary["removed_failed"] == 1
        assert summary["kept"] == 1  # queued entries are never collected
        assert queue.get(live.job_hash) is not None
        assert queue.get(done.job_hash) is None

    def test_gc_respects_ttl_and_dry_run(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        entry = queue.submit(_tiny_job())
        queue.lease(limit=1, now=100.0)
        queue.complete(entry.job_hash)
        summary = queue.gc(ttl=3600.0)  # entry is fresh: kept
        assert summary["removed_done"] == 0 and summary["kept"] == 1
        self._aged(queue.entries_dir / f"{entry.job_hash}.json", 7200.0)
        dry = queue.gc(ttl=3600.0, dry_run=True)
        assert dry["removed_done"] == 1
        assert queue.get(entry.job_hash) is not None  # dry run deleted nothing
        queue.gc(ttl=3600.0)
        assert queue.get(entry.job_hash) is None

    def test_gc_sweeps_stray_tmp_files(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        stray = queue.entries_dir / ".deadbeef-xyz.tmp"
        stray.write_text("{}", encoding="utf-8")
        self._aged(stray, 7200.0)
        summary = queue.gc(ttl=3600.0)
        assert summary["removed_tmp"] == 1
        assert not stray.exists()


# ---------------------------------------------------------------------------
# Service-level chaos: isolation, quarantine, healing, bit-identity
# ---------------------------------------------------------------------------


class TestServiceChaos:
    def test_chaos_drain_stays_bit_identical(self, tmp_path):
        """The flagship chaos contract: torn writes, lost writes, injected fs
        errors, per-job exceptions, and short hangs -- the drained sweep is
        still bit-identical to a serial run, with no entry lost or
        duplicated, and the service never exits on a per-job failure."""
        plan = FaultPlan.parse(
            "seed=7;torn@queue.write=0.15;skip@queue.write=0.05;"
            "oserror@queue.read=0.1;raise@job=0.3;hang@job=0.2:0.02"
        )
        root = tmp_path / "fleet"
        campaign = _tiny_campaign()
        submit_campaign(root, campaign)
        service = FleetService(
            _drain_config(root, faults=plan, max_attempts=6, lease_timeout=5.0)
        )
        summary = service.serve_forever()
        assert summary["drained"] is True
        assert sum(plan.summary().values()) > 0  # chaos actually fired
        verdict = verify_campaign(root, campaign)
        assert verdict["ok"] is True, verdict
        counts = JobQueue(FleetPaths(root).queue_dir).counts()
        assert counts[STATE_DONE] == len(campaign.jobs)
        assert counts["corrupt"] == 0

    def test_fault_sequence_replays_bit_identically_from_seed(self, tmp_path):
        """Two fresh directories, same seed, same driven poll sequence: the
        injected fault event logs and final queue states are identical."""
        spec = "seed=11;torn@queue.write=0.2;raise@job=0.25;oserror@queue.read=0.1"

        def drive(name):
            plan = FaultPlan.parse(spec)
            root = tmp_path / name
            campaign = _tiny_campaign()
            submit_campaign(root, campaign)
            service = FleetService(
                _drain_config(root, faults=plan, max_attempts=6)
            )
            t = 1000.0
            for _ in range(12):
                service.run_once(now=t)
                t += 100.0  # far past any backoff window
            service.executor.close()
            counts = service.queue.counts()
            return plan.events, counts

        events_a, counts_a = drive("a")
        events_b, counts_b = drive("b")
        assert events_a == events_b
        assert events_a  # chaos actually fired
        assert counts_a == counts_b
        assert counts_a[STATE_DONE] == len(_tiny_campaign().jobs)

    def test_in_process_crash_is_isolated_and_quarantined(self, tmp_path):
        """workers=1 runs jobs in-process: the crash directive degrades to an
        isolated exception; co-leased jobs complete, the poison job exhausts
        its attempts and lands in quarantine with its paper trail."""
        root = tmp_path / "fleet"
        campaign = _tiny_campaign()
        poison_hash = campaign.jobs[0].content_hash
        submit_campaign(root, campaign)
        plan = FaultPlan.parse(f"crash@job[{poison_hash[:12]}]=1.0")
        service = FleetService(_drain_config(root, faults=plan, max_attempts=2))
        summary = service.serve_forever()
        assert summary["jobs_quarantined"] == 1
        record = Quarantine(root / "quarantine").get(poison_hash)
        assert record is not None
        assert record.reason == "exhausted"
        assert record.error_class == "InjectedWorkerCrash"
        assert record.attempts == 2
        assert len(record.history) == 2
        assert record.job is not None  # resubmittable payload preserved
        store = ShardedResultStore(FleetPaths(root).store_dir)
        for job in campaign.jobs[1:]:
            assert store.has_job(job.content_hash)
        assert not store.has_job(poison_hash)

    def test_pool_crash_poison_job_quarantined_others_complete(self, tmp_path):
        """The acceptance shape: a job that kills its pool worker every
        attempt ends quarantined after max_attempts while every co-submitted
        job completes; the service never exits on the failures; doctor
        accounts for the poison job and reports the dir healthy."""
        root = tmp_path / "fleet"
        campaign = _tiny_campaign()
        poison_hash = campaign.jobs[0].content_hash
        submit_campaign(root, campaign)
        plan = FaultPlan.parse(f"crash@job[{poison_hash[:12]}]=1.0")
        service = FleetService(
            _drain_config(root, faults=plan, workers=2, max_attempts=2)
        )
        summary = service.serve_forever()
        assert summary["jobs_quarantined"] == 1
        assert summary["drained"] is False  # the manifest can never finalize
        record = Quarantine(root / "quarantine").get(poison_hash)
        assert record is not None
        assert record.attempts == 2
        store = ShardedResultStore(FleetPaths(root).store_dir)
        for job in campaign.jobs[1:]:
            assert store.has_job(job.content_hash)
        # The queue holds only the completed jobs; the poison entry moved out.
        counts = JobQueue(FleetPaths(root).queue_dir).counts()
        assert counts[STATE_DONE] == len(campaign.jobs) - 1
        assert counts[STATE_FAILED] == 0
        # Doctor: the quarantined job is accounted for, the dir is healthy.
        report = run_doctor(root)
        assert report.ok, [f.to_dict() for f in report.findings]
        codes = {finding.code for finding in report.findings}
        assert "quarantined-job" in codes

    def test_corrupt_entry_restored_from_store(self, tmp_path):
        root = tmp_path / "fleet"
        campaign = _tiny_campaign()
        submit_campaign(root, campaign)
        service = FleetService(_drain_config(root))
        service.serve_forever()
        # Corrupt a done entry whose result is safely in the store.
        queue = JobQueue(FleetPaths(root).queue_dir)
        victim = queue.entries()[0]
        path = queue.entries_dir / f"{victim.job_hash}.json"
        path.write_text("{torn", encoding="utf-8")
        assert queue.counts()["corrupt"] == 1
        healer = FleetService(_drain_config(root))
        healer.run_once(now=time.time())
        healer.executor.close()
        counts = queue.counts()
        assert counts["corrupt"] == 0
        restored = queue.get(victim.job_hash)
        assert restored.state == STATE_DONE
        assert restored.note == "doctor-restored"


# ---------------------------------------------------------------------------
# Doctor
# ---------------------------------------------------------------------------


class TestDoctor:
    def _drained_fleet(self, tmp_path):
        root = tmp_path / "fleet"
        campaign = _tiny_campaign()
        submit_campaign(root, campaign)
        FleetService(_drain_config(root)).serve_forever()
        return root, campaign

    def test_healthy_drained_dir_is_ok(self, tmp_path):
        root, _ = self._drained_fleet(tmp_path)
        report = run_doctor(root)
        assert report.ok
        # The exited service's heartbeat reads as informational, not broken.
        assert all(f.severity != "error" for f in report.findings)

    def test_corrupt_entry_is_an_error_until_fixed(self, tmp_path):
        root, _ = self._drained_fleet(tmp_path)
        queue = JobQueue(FleetPaths(root).queue_dir)
        victim = queue.entries()[0]
        path = queue.entries_dir / f"{victim.job_hash}.json"
        path.write_text("{torn", encoding="utf-8")
        audit = run_doctor(root)
        assert not audit.ok
        assert any(f.code == "corrupt-entry" for f in audit.findings)
        fixed = run_doctor(root, fix=True)
        assert fixed.ok
        assert queue.get(victim.job_hash).state == STATE_DONE
        assert run_doctor(root).ok

    def test_corrupt_entry_without_result_is_quarantined_on_fix(self, tmp_path):
        root = tmp_path / "fleet"
        queue = JobQueue(FleetPaths(root).queue_dir)
        entry = queue.submit(_tiny_job())
        path = queue.entries_dir / f"{entry.job_hash}.json"
        path.write_text("{torn", encoding="utf-8")
        report = run_doctor(root, fix=True)
        assert report.ok
        assert not path.exists()
        assert Quarantine(root / "quarantine").has(entry.job_hash)

    def test_done_without_stored_result_is_requeued_on_fix(self, tmp_path):
        root, _ = self._drained_fleet(tmp_path)
        store = ShardedResultStore(FleetPaths(root).store_dir)
        queue = JobQueue(FleetPaths(root).queue_dir)
        victim = queue.entries()[0]
        store.job_path(victim.job_hash).unlink()
        audit = run_doctor(root)
        assert any(f.code == "done-missing-result" for f in audit.findings)
        assert not audit.ok
        fixed = run_doctor(root, fix=True)
        assert fixed.ok
        assert queue.get(victim.job_hash).state == STATE_QUEUED

    def test_already_stored_lease_is_completed_on_fix(self, tmp_path):
        root, _ = self._drained_fleet(tmp_path)
        queue = JobQueue(FleetPaths(root).queue_dir)
        victim = queue.entries()[0]
        queue.record_queued(victim)
        queue.lease(limit=1, now=time.time())
        report = run_doctor(root, fix=True)
        assert any(
            f.code == "already-stored" and f.fixed for f in report.findings
        )
        assert queue.get(victim.job_hash).state == STATE_DONE

    def test_expired_lease_is_recovered_on_fix(self, tmp_path):
        root = tmp_path / "fleet"
        queue = JobQueue(FleetPaths(root).queue_dir, lease_timeout=30.0)
        entry = queue.submit(_tiny_job())
        queue.lease(limit=1, now=100.0)
        report = run_doctor(root, fix=True, now=200.0)
        assert any(
            f.code == "expired-lease" and f.fixed for f in report.findings
        )
        assert queue.get(entry.job_hash).state == STATE_QUEUED

    def test_stray_tmp_is_swept_on_fix(self, tmp_path):
        root = tmp_path / "fleet"
        queue = JobQueue(FleetPaths(root).queue_dir)
        stray = queue.entries_dir / ".cafef00d-abc.tmp"
        stray.write_text("{}", encoding="utf-8")
        stamp = time.time() - 3600.0
        os.utime(stray, (stamp, stamp))
        report = run_doctor(root, fix=True)
        assert any(f.code == "stray-tmp" and f.fixed for f in report.findings)
        assert not stray.exists()

    def test_lost_manifest_job_is_an_error(self, tmp_path):
        root, campaign = self._drained_fleet(tmp_path)
        victim = campaign.jobs[0].content_hash
        queue = JobQueue(FleetPaths(root).queue_dir)
        store = ShardedResultStore(FleetPaths(root).store_dir)
        queue.remove(victim)
        store.job_path(victim).unlink()
        report = run_doctor(root)
        assert not report.ok
        assert any(
            f.code == "lost-job" and f.subject == victim
            for f in report.findings
        )

    def test_stale_heartbeat_with_pending_work_is_a_warning(self, tmp_path):
        root = tmp_path / "fleet"
        queue = JobQueue(FleetPaths(root).queue_dir)
        queue.submit(_tiny_job())
        FleetPaths(root).heartbeat.write_text(
            json.dumps({"pid": 1, "updated_unix": 0.0}), encoding="utf-8"
        )
        report = run_doctor(root)
        assert report.ok  # warnings never flip the health verdict
        [finding] = [
            f for f in report.findings if f.code == "stale-heartbeat"
        ]
        assert finding.severity == "warning"


# ---------------------------------------------------------------------------
# CLI: fleet doctor / fleet gc / serve --faults / status surfaces
# ---------------------------------------------------------------------------


class TestResilienceCli:
    def _drained_fleet(self, tmp_path):
        root = tmp_path / "fleet"
        campaign = _tiny_campaign()
        submit_campaign(root, campaign)
        FleetService(_drain_config(root)).serve_forever()
        return root

    def test_doctor_healthy_exits_zero(self, tmp_path, capsys):
        from repro.runtime.cli import main

        root = self._drained_fleet(tmp_path)
        assert main(["fleet", "doctor", "--fleet-dir", str(root)]) == 0
        output = capsys.readouterr().out
        assert "verdict: healthy" in output

    def test_doctor_flags_corruption_and_fixes_it(self, tmp_path, capsys):
        from repro.runtime.cli import main

        root = self._drained_fleet(tmp_path)
        queue = JobQueue(FleetPaths(root).queue_dir)
        victim = queue.entries()[0]
        (queue.entries_dir / f"{victim.job_hash}.json").write_text(
            "{torn", encoding="utf-8"
        )
        assert main(["fleet", "doctor", "--fleet-dir", str(root)]) == 1
        output = capsys.readouterr().out
        assert "UNHEALTHY" in output and "corrupt-entry" in output
        assert main(["fleet", "doctor", "--fleet-dir", str(root), "--fix"]) == 0
        assert "[fixed]" in capsys.readouterr().out
        assert main(["fleet", "doctor", "--fleet-dir", str(root)]) == 0

    def test_doctor_json_round_trips(self, tmp_path, capsys):
        from repro.runtime.cli import main

        root = self._drained_fleet(tmp_path)
        assert main(["fleet", "doctor", "--fleet-dir", str(root), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert isinstance(report["findings"], list)

    def test_gc_dry_run_then_real(self, tmp_path, capsys):
        from repro.runtime.cli import main

        root = self._drained_fleet(tmp_path)
        queue = JobQueue(FleetPaths(root).queue_dir)
        stamp = time.time() - 7200.0
        for path in queue.entries_dir.glob("*.json"):
            os.utime(path, (stamp, stamp))
        args = ["fleet", "gc", "--fleet-dir", str(root), "--ttl", "3600"]
        assert main(args + ["--dry-run"]) == 0
        assert "would remove 3 done" in capsys.readouterr().out
        assert len(queue.entries()) == 3  # dry run deleted nothing
        assert main(args) == 0
        assert "removed 3 done" in capsys.readouterr().out
        assert queue.entries() == []

    def test_gc_rejects_negative_ttl(self, tmp_path, capsys):
        from repro.runtime.cli import main

        code = main(["fleet", "gc", "--fleet-dir", str(tmp_path), "--ttl", "-5"])
        assert code == 2
        assert "--ttl" in capsys.readouterr().err

    def test_status_surfaces_corruption_and_quarantine(self, tmp_path, capsys):
        from repro.runtime.cli import main

        root = self._drained_fleet(tmp_path)
        queue = JobQueue(FleetPaths(root).queue_dir)
        victim = queue.entries()[0]
        (queue.entries_dir / f"{victim.job_hash}.json").write_text(
            "{torn", encoding="utf-8"
        )
        Quarantine(root / "quarantine").add(
            FailureRecord(
                job_hash="ab" * 20,
                reason="exhausted",
                error_class="RuntimeError",
                message="boom",
                attempts=3,
            )
        )
        assert main(["fleet", "status", "--fleet-dir", str(root)]) == 0
        output = capsys.readouterr().out
        assert "1 CORRUPT" in output
        assert "quarantine: 1 job(s)" in output

    def test_serve_rejects_invalid_faults_spec(self, tmp_path, capsys):
        from repro.runtime.cli import main

        code = main(
            ["serve", "--fleet-dir", str(tmp_path), "--faults", "bogus-spec"]
        )
        assert code == 2
        assert "invalid --faults spec" in capsys.readouterr().err

    def test_serve_drains_under_faults(self, tmp_path, capsys):
        from repro.runtime.cli import main

        root = tmp_path / "fleet"
        campaign = _tiny_campaign()
        submit_campaign(root, campaign)
        code = main(
            [
                "serve",
                "--fleet-dir",
                str(root),
                "--drain",
                "--workers",
                "1",
                "--poll-interval",
                "0.01",
                "--no-autoscale",
                "--faults",
                "seed=5;raise@job=0.2",
                "--json",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        summary = json.loads(captured.out)
        assert summary["drained"] is True
        assert "faults" in summary
        assert "chaos faults active" in captured.err + captured.out
        assert verify_campaign(root, campaign)["ok"] is True


# ---------------------------------------------------------------------------
# FailureRecord round-trip
# ---------------------------------------------------------------------------


class TestFailureRecord:
    def test_round_trip(self, tmp_path):
        record = FailureRecord(
            job_hash="ab" * 20,
            reason="exhausted",
            error_class="RuntimeError",
            message="boom",
            attempts=3,
            job={"kind": "simulation"},
            history=(
                {"attempt": 1, "error_class": "RuntimeError", "error": "boom"},
            ),
            recorded_unix=123.0,
        )
        quarantine = Quarantine(tmp_path / "quarantine")
        quarantine.add(record)
        loaded = quarantine.get(record.job_hash)
        assert loaded == record
        assert quarantine.counts() == {"jobs": 1, "corrupt": 0}
        assert quarantine.has(record.job_hash)
