"""Tests for the block-and-drain IO interconnect."""

import pytest

from repro import config
from repro.soc.interconnect import (
    BlockDrainInterconnect,
    InterconnectPhase,
    InterconnectStateError,
)


@pytest.fixture
def fabric():
    return BlockDrainInterconnect()


class TestNormalOperation:
    def test_submit_and_retire(self, fabric):
        fabric.submit(4)
        assert fabric.outstanding_requests == 4
        fabric.retire(2)
        assert fabric.outstanding_requests == 2

    def test_queue_depth_cap(self, fabric):
        fabric.submit(1000)
        assert fabric.outstanding_requests == fabric.queue_depth

    def test_retire_never_goes_negative(self, fabric):
        fabric.retire(5)
        assert fabric.outstanding_requests == 0

    def test_negative_count_rejected(self, fabric):
        with pytest.raises(ValueError):
            fabric.submit(-1)


class TestBlockDrainProtocol:
    def test_full_cycle(self, fabric):
        fabric.submit(8)
        fabric.block()
        duration = fabric.drain()
        assert duration >= 0
        assert fabric.is_quiescent
        fabric.release(new_frequency=config.IO_INTERCONNECT_LOW_FREQUENCY)
        assert fabric.phase is InterconnectPhase.RUNNING
        assert fabric.frequency == pytest.approx(config.IO_INTERCONNECT_LOW_FREQUENCY)

    def test_drain_time_within_budget(self, fabric):
        fabric.submit(fabric.queue_depth)
        fabric.block()
        assert fabric.drain() <= config.TRANSITION_DRAIN_LATENCY

    def test_submit_while_blocked_rejected(self, fabric):
        fabric.block()
        with pytest.raises(InterconnectStateError):
            fabric.submit()

    def test_drain_without_block_rejected(self, fabric):
        with pytest.raises(InterconnectStateError):
            fabric.drain()

    def test_release_without_drain_rejected(self, fabric):
        fabric.block()
        with pytest.raises(InterconnectStateError):
            fabric.release()

    def test_double_block_rejected(self, fabric):
        fabric.block()
        with pytest.raises(InterconnectStateError):
            fabric.block()

    def test_drain_history_recorded(self, fabric):
        fabric.submit(4)
        fabric.block()
        fabric.drain()
        fabric.release()
        assert len(fabric.drain_history) == 1

    def test_estimated_drain_time_matches_actual(self, fabric):
        fabric.submit(16)
        estimate = fabric.estimated_drain_time()
        fabric.block()
        assert fabric.drain() == pytest.approx(estimate)

    def test_empty_drain_is_instant(self, fabric):
        fabric.block()
        assert fabric.drain() == pytest.approx(0.0)
