"""Tests for the compute-domain and whole-SoC power models."""

import pytest

from repro.memory.ddrio import DdrioModel
from repro.memory.dram import lpddr3_device
from repro.memory.power import MemoryPowerModel
from repro.power.models import ActivityVector, ComputePowerModel, SoCPowerModel
from repro.soc.skylake import build_skylake_soc


@pytest.fixture
def compute_model():
    soc = build_skylake_soc()
    return ComputePowerModel(
        cpu=soc.cpu, gfx=soc.gfx, uncore=soc.uncore,
        cpu_curve=soc.cpu_curve, gfx_curve=soc.gfx_curve,
    )


@pytest.fixture
def soc_power(compute_model):
    memory = MemoryPowerModel(device=lpddr3_device(), ddrio=DdrioModel())
    return SoCPowerModel(compute=compute_model, memory=memory)


class TestActivityVector:
    def test_defaults_are_valid(self):
        ActivityVector()

    def test_idle_vector(self):
        idle = ActivityVector.idle()
        assert idle.cpu_activity == 0.0 and idle.active_cores == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ActivityVector(cpu_activity=1.5)
        with pytest.raises(ValueError):
            ActivityVector(memory_bandwidth=-1.0)


class TestComputePower:
    def test_cpu_power_increases_with_frequency(self, compute_model):
        assert compute_model.cpu_power(2.0e9) > compute_model.cpu_power(1.2e9)

    def test_cpu_power_superlinear_in_frequency(self, compute_model):
        """Voltage rises with frequency, so power grows faster than linearly."""
        p1 = compute_model.cpu_power(1.2e9)
        p2 = compute_model.cpu_power(2.4e9)
        assert p2 > 2.0 * p1

    def test_gfx_power_increases_with_frequency(self, compute_model):
        assert compute_model.gfx_power(800e6) > compute_model.gfx_power(300e6)

    def test_activity_reduces_power(self, compute_model):
        assert compute_model.cpu_power(1.5e9, activity=0.5) < compute_model.cpu_power(1.5e9)

    def test_single_core_less_than_two(self, compute_model):
        assert compute_model.cpu_power(1.5e9, active_cores=1) < compute_model.cpu_power(
            1.5e9, active_cores=2
        )

    def test_breakdown_total(self, compute_model):
        soc = build_skylake_soc()
        state = soc.default_state()
        breakdown = compute_model.breakdown(state, ActivityVector())
        assert breakdown.total == pytest.approx(
            breakdown.cpu_cores + breakdown.graphics + breakdown.uncore
        )

    def test_idle_breakdown_only_leakage(self, compute_model):
        soc = build_skylake_soc()
        state = soc.default_state()
        idle = compute_model.breakdown(state, ActivityVector.idle())
        busy = compute_model.breakdown(state, ActivityVector())
        assert idle.cpu_cores < busy.cpu_cores

    def test_plausible_magnitude_for_4p5w_part(self, compute_model):
        """Two cores at the 1.2 GHz base clock should fit inside a 4.5 W TDP."""
        assert 0.5 < compute_model.cpu_power(1.2e9) < 2.5


class TestSoCPower:
    def test_total_is_sum_of_domains(self, soc_power):
        soc = build_skylake_soc()
        breakdown = soc_power.breakdown(soc.default_state(), ActivityVector(memory_bandwidth=5e9))
        assert breakdown.total == pytest.approx(
            breakdown.compute_domain
            + breakdown.io_domain
            + breakdown.memory_domain
            + breakdown.platform_fixed
        )

    def test_total_within_plausible_mobile_range(self, soc_power):
        soc = build_skylake_soc()
        total = soc_power.total(soc.default_state(), ActivityVector(memory_bandwidth=5e9))
        assert 2.0 < total < 8.0

    def test_low_operating_point_reduces_io_memory_power(self, soc_power):
        soc = build_skylake_soc()
        high = soc.default_state()
        low = high.with_updates(
            dram_frequency=1.06e9, interconnect_frequency=0.4e9, v_sa_scale=0.8, v_io_scale=0.85
        )
        activity = ActivityVector(memory_bandwidth=4e9)
        assert soc_power.io_memory_power(low, activity) < soc_power.io_memory_power(high, activity)

    def test_as_dict(self, soc_power):
        soc = build_skylake_soc()
        data = soc_power.breakdown(soc.default_state(), ActivityVector()).as_dict()
        for key in ("compute_domain", "io_domain", "memory_domain", "total"):
            assert key in data
