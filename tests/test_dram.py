"""Tests for DRAM timings and the DRAM device model."""

import pytest

from repro import config
from repro.memory.dram import (
    DramDevice,
    DramOrganization,
    DramTechnology,
    SelfRefreshError,
    ddr4_device,
    lpddr3_device,
)
from repro.memory.timings import DramTimings, timings_for_frequency


class TestTimings:
    def test_peak_bandwidth_matches_paper(self):
        timings = timings_for_frequency(1.6e9, "lpddr3")
        assert timings.peak_bandwidth == pytest.approx(25.6e9)

    def test_lower_frequency_lower_bandwidth(self):
        high = timings_for_frequency(1.6e9, "lpddr3")
        low = timings_for_frequency(1.06e9, "lpddr3")
        assert low.peak_bandwidth < high.peak_bandwidth

    def test_burst_duration_scales_inversely_with_rate(self):
        high = timings_for_frequency(1.6e9, "lpddr3")
        low = timings_for_frequency(0.8e9, "lpddr3")
        assert low.burst_duration == pytest.approx(2 * high.burst_duration)

    def test_quantization_never_reduces_latency(self):
        for frequency in config.LPDDR3_FREQUENCY_BINS:
            timings = timings_for_frequency(frequency, "lpddr3")
            assert timings.trcd >= 18e-9 - 1e-12
            assert timings.tcl >= 15e-9 - 1e-12

    def test_row_miss_slower_than_row_hit(self):
        timings = timings_for_frequency(1.6e9, "lpddr3")
        assert timings.row_miss_latency > timings.row_hit_latency

    def test_average_latency_between_hit_and_miss(self):
        timings = timings_for_frequency(1.6e9, "lpddr3")
        average = timings.average_access_latency(0.5)
        assert timings.row_hit_latency < average < timings.row_miss_latency

    def test_unknown_technology_rejected(self):
        with pytest.raises(ValueError):
            timings_for_frequency(1.6e9, "gddr7")

    def test_invalid_hit_rate_rejected(self):
        timings = timings_for_frequency(1.6e9, "lpddr3")
        with pytest.raises(ValueError):
            timings.average_access_latency(1.5)

    def test_ddr4_timings_exist_for_all_bins(self):
        for frequency in config.DDR4_FREQUENCY_BINS:
            timings = timings_for_frequency(frequency, "ddr4")
            assert isinstance(timings, DramTimings)


class TestDramDevice:
    def test_default_bin_is_highest(self):
        device = lpddr3_device()
        assert device.current_frequency == pytest.approx(1.6e9)

    def test_bin_navigation(self):
        device = lpddr3_device()
        assert device.next_lower_bin() == pytest.approx(1.06e9)
        assert device.next_higher_bin(1.06e9) == pytest.approx(1.6e9)
        assert device.next_lower_bin(0.8e9) is None
        assert device.next_higher_bin(1.6e9) is None

    def test_supports_only_discrete_bins(self):
        device = lpddr3_device()
        assert device.supports_frequency(1.06e9)
        assert not device.supports_frequency(1.3e9)

    def test_frequency_change_requires_self_refresh(self):
        device = lpddr3_device()
        with pytest.raises(SelfRefreshError):
            device.set_frequency(1.06e9)

    def test_frequency_change_in_self_refresh(self):
        device = lpddr3_device()
        device.enter_self_refresh()
        device.set_frequency(1.06e9)
        exit_latency = device.exit_self_refresh()
        assert device.current_frequency == pytest.approx(1.06e9)
        assert exit_latency <= config.TRANSITION_SELF_REFRESH_EXIT_LATENCY
        assert device.frequency_switch_count == 1

    def test_unsupported_frequency_rejected(self):
        device = lpddr3_device()
        device.enter_self_refresh()
        with pytest.raises(ValueError):
            device.set_frequency(1.3e9)

    def test_double_self_refresh_entry_rejected(self):
        device = lpddr3_device()
        device.enter_self_refresh()
        with pytest.raises(SelfRefreshError):
            device.enter_self_refresh()

    def test_exit_without_entry_rejected(self):
        device = lpddr3_device()
        with pytest.raises(SelfRefreshError):
            device.exit_self_refresh()

    def test_slow_exit_without_fast_training(self):
        device = lpddr3_device()
        device.enter_self_refresh()
        assert device.exit_self_refresh(fast_training=False) > config.TRANSITION_SELF_REFRESH_EXIT_LATENCY

    def test_peak_bandwidth_per_bin(self):
        device = lpddr3_device()
        assert device.peak_bandwidth(1.6e9) == pytest.approx(25.6e9)
        assert device.peak_bandwidth(1.06e9) == pytest.approx(16.96e9)

    def test_ddr4_device_bins(self):
        device = ddr4_device()
        assert device.technology is DramTechnology.DDR4
        assert device.max_frequency == pytest.approx(2.13e9)

    def test_organization_validation(self):
        with pytest.raises(ValueError):
            DramOrganization(ranks=0)

    def test_total_banks(self):
        organization = DramOrganization(ranks=2, banks_per_rank=8)
        assert organization.total_banks == 16

    def test_describe(self):
        device = lpddr3_device()
        summary = device.describe()
        assert summary["technology"] == "lpddr3"
        assert summary["channels"] == 2

    def test_device_requires_bins(self):
        with pytest.raises(ValueError):
            DramDevice(technology=DramTechnology.LPDDR3, frequency_bins=())
