"""Tests for V/F curves and P-state tables."""

import pytest

from repro import config
from repro.power.pstates import build_cpu_pstates, build_cpu_vf_curve, build_gfx_pstates
from repro.soc.vf_curves import PState, PStateTable, VFCurve, VFCurveError


@pytest.fixture
def curve():
    return VFCurve.from_points([(0.4e9, 0.58), (1.2e9, 0.65), (2.9e9, 1.02)])


class TestVFCurve:
    def test_requires_two_points(self):
        with pytest.raises(VFCurveError):
            VFCurve(points=((1e9, 0.6),))

    def test_rejects_non_monotonic_voltage(self):
        with pytest.raises(VFCurveError):
            VFCurve.from_points([(1e9, 0.8), (2e9, 0.7)])

    def test_rejects_duplicate_frequencies(self):
        with pytest.raises(VFCurveError):
            VFCurve.from_points([(1e9, 0.6), (1e9, 0.7)])

    def test_vmin_and_fmax(self, curve):
        assert curve.vmin == pytest.approx(0.58)
        assert curve.fmax == pytest.approx(2.9e9)

    def test_voltage_below_fmin_is_floor(self, curve):
        assert curve.voltage_at(0.1e9) == pytest.approx(0.58)

    def test_voltage_interpolates(self, curve):
        v = curve.voltage_at(0.8e9)
        assert 0.58 < v < 0.65

    def test_voltage_at_known_point(self, curve):
        assert curve.voltage_at(1.2e9) == pytest.approx(0.65)

    def test_voltage_above_fmax_raises(self, curve):
        with pytest.raises(VFCurveError):
            curve.voltage_at(3.5e9)

    def test_max_frequency_inverse_lookup(self, curve):
        frequency = curve.max_frequency_at(0.65)
        assert frequency == pytest.approx(1.2e9, rel=1e-6)

    def test_max_frequency_below_vmin_raises(self, curve):
        with pytest.raises(VFCurveError):
            curve.max_frequency_at(0.3)

    def test_scaled_curve(self, curve):
        scaled = curve.scaled(0.5, 1.1)
        assert scaled.fmax == pytest.approx(curve.fmax * 0.5)
        assert scaled.vmax == pytest.approx(curve.vmax * 1.1)

    def test_voltage_monotone_in_frequency(self, curve):
        frequencies = [0.4e9, 0.8e9, 1.2e9, 2.0e9, 2.9e9]
        voltages = [curve.voltage_at(f) for f in frequencies]
        assert voltages == sorted(voltages)


class TestPStateTable:
    def test_from_curve_orders_states(self, curve):
        table = PStateTable.from_curve(curve, [2.9e9, 0.4e9, 1.2e9])
        assert table.min_state.frequency == pytest.approx(0.4e9)
        assert table.max_state.frequency == pytest.approx(2.9e9)

    def test_names_follow_convention(self, curve):
        table = PStateTable.from_curve(curve, [0.4e9, 1.2e9, 2.9e9])
        assert table.max_state.name == "P0"
        assert table.min_state.name == "P2"

    def test_pn_is_max_frequency_at_vmin(self):
        table = build_cpu_pstates()
        pn = table.pn
        assert pn.voltage == pytest.approx(table.min_state.voltage)
        assert pn.frequency >= table.min_state.frequency

    def test_floor_and_ceiling(self, curve):
        table = PStateTable.from_curve(curve, [0.4e9, 1.2e9, 2.9e9])
        assert table.floor(1.5e9).frequency == pytest.approx(1.2e9)
        assert table.ceiling(1.5e9).frequency == pytest.approx(2.9e9)

    def test_step_up_down(self, curve):
        table = PStateTable.from_curve(curve, [0.4e9, 1.2e9, 2.9e9])
        middle = table.nearest(1.2e9)
        assert table.step_up(middle).frequency == pytest.approx(2.9e9)
        assert table.step_down(middle).frequency == pytest.approx(0.4e9)
        assert table.step_down(table.min_state) is table.min_state
        assert table.step_up(table.max_state) is table.max_state

    def test_by_name_lookup(self, curve):
        table = PStateTable.from_curve(curve, [0.4e9, 2.9e9])
        assert table.by_name("P0").frequency == pytest.approx(2.9e9)
        with pytest.raises(KeyError):
            table.by_name("P9")

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            PStateTable(states=[])

    def test_duplicate_frequencies_rejected(self):
        with pytest.raises(ValueError):
            PStateTable(states=[PState("a", 1e9, 0.6), PState("b", 1e9, 0.7)])


class TestDefaultTables:
    def test_cpu_table_spans_base_to_turbo(self):
        table = build_cpu_pstates()
        assert table.min_state.frequency <= config.SKYLAKE_CPU_BASE_FREQUENCY
        assert table.max_state.frequency == pytest.approx(2.9e9)

    def test_gfx_table_starts_at_300mhz(self):
        table = build_gfx_pstates()
        assert table.min_state.frequency == pytest.approx(300e6)

    def test_cpu_curve_voltage_rises_with_frequency(self):
        curve = build_cpu_vf_curve()
        assert curve.voltage_at(2.9e9) > curve.voltage_at(1.2e9)
