"""A deliberate violation waived by an inline pragma."""


def debug_dump(payload):
    print(payload)  # reprolint: disable=console
