# reprolint: module=repro.runtime.fake_fixture
"""Good: import time binds only plain data; handles and threads are lazy."""

import threading
from typing import Any, Optional

LOG_PATH = "/tmp/fixture.log"  # plain data: fork-safe to inherit

_WATCHER_LOCK = threading.Lock()  # sync primitives are safe to *create*
_WATCHER: Optional[threading.Thread] = None


def append_log(line: str) -> None:
    """Open per call, after any fork, so workers never share a descriptor."""
    with open(LOG_PATH, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def ensure_watcher(target: Any) -> threading.Thread:
    """Start the background thread lazily, in whichever process needs it."""
    global _WATCHER
    with _WATCHER_LOCK:
        if _WATCHER is None or not _WATCHER.is_alive():
            _WATCHER = threading.Thread(target=target, daemon=True)
            _WATCHER.start()
    return _WATCHER
