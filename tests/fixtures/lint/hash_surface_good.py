# reprolint: module=repro.hw.fake_fixture
"""Good: every field reaches the payload, and the payload is versioned."""

from dataclasses import dataclass

from repro.hashing import content_hash

WIDGET_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class WidgetSpec:
    name: str
    frequency: float
    voltage: float

    def to_dict(self):
        return {
            "name": self.name,
            "frequency": self.frequency,
            "voltage": self.voltage,
        }

    @property
    def content_hash(self):
        return content_hash({"schema": WIDGET_SCHEMA_VERSION, **self.to_dict()})
