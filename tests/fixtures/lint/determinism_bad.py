# reprolint: module=repro.sim.fake_fixture
"""Bad: a model-layer module reading clocks, global RNGs, and the env."""

import os
import time

import numpy as np


def simulate_segment(duration):
    started = time.perf_counter()  # wall clock in result code
    jitter = np.random.rand()  # global NumPy RNG: irreproducible
    scale = float(os.environ.get("REPRO_SCALE", "1.0"))  # env-dependent result
    return (time.time() - started) + jitter * scale * duration
