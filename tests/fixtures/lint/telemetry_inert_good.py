# reprolint: module=repro.obs.fake_fixture
"""Good: telemetry reads the observed object and builds its own records."""


def observe_run(engine, registry):
    registry.counter("engine.runs").inc()
    record = {"ticks": engine.ticks}  # obs-owned structure
    record["policy"] = engine.policy_name
    return record
