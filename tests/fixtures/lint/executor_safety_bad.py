# reprolint: module=repro.runtime.fake_fixture
"""Bad: fork-unsafe state created at import time in a worker-visible module."""

import threading

LOG_HANDLE = open("/tmp/fixture.log", "a")  # noqa: SIM115

WATCHER = threading.Thread(target=lambda: None, daemon=True)
WATCHER.start()
