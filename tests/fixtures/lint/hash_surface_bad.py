# reprolint: module=repro.hw.fake_fixture
"""Bad: a hashed spec whose serializer silently drops a field."""

from dataclasses import dataclass

from repro.hashing import content_hash


@dataclass(frozen=True)
class WidgetSpec:
    name: str
    frequency: float
    voltage: float  # added later, never wired into to_dict(): hash collision

    def to_dict(self):
        return {"name": self.name, "frequency": self.frequency}

    @property
    def content_hash(self):  # no *SCHEMA_VERSION constant in the module
        return content_hash(self.to_dict())
