"""Bad: output bypassing the Console contract."""

import sys


def report(value):
    print(f"value = {value}")  # bypasses --quiet/--json handling
    sys.stderr.write("done\n")
