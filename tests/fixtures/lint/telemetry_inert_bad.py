# reprolint: module=repro.obs.fake_fixture
"""Bad: telemetry writing back into the object it was handed."""


def observe_run(engine, registry):
    registry.counter("engine.runs").inc()
    engine.last_seen = "obs"  # mutates the observed engine: not inert
    engine.samples.append(1)  # ditto, through a method
