# reprolint: module=repro.sim.fake_fixture
"""Bad: the model layer importing telemetry at the top level."""

from repro.obs import state as obs_state  # model -> obs: forbidden edge


def run():
    return obs_state.enabled()
