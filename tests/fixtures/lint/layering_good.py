# reprolint: module=repro.runtime.fake_fixture
"""Good: the runtime may see the model; lazy imports break cycles."""

from repro.sim.engine import SimulationConfig  # runtime -> model: allowed


def scenario_names():
    # Function-scoped deferred import: the sanctioned cycle-breaking idiom
    # (not a layering edge -- nothing couples at import time).
    from repro.scenarios.registry import SCENARIOS

    return sorted(SCENARIOS), SimulationConfig
