# reprolint: module=repro.hw.fake_fixture
"""Bad: an unversioned hash payload, and an ad-hoc digest beside it."""

import hashlib
import json

from repro.hashing import content_hash


def widget_key(name: str, frequency: float) -> str:
    # No 'schema' stamp: when the payload format changes, old and new cache
    # entries collide instead of missing.
    return content_hash({"name": name, "frequency": frequency})


def widget_digest(payload: dict) -> str:
    # Bypasses canonical_json: key order and float formatting now decide
    # whether equal payloads hash equal.
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()
