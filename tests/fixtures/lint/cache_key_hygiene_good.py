# reprolint: module=repro.hw.fake_fixture
"""Good: versioned payloads, hashed only through repro.hashing."""

from repro.hashing import content_hash

WIDGET_SCHEMA_VERSION = 1


def widget_key(name: str, frequency: float) -> str:
    return content_hash(
        {
            "schema": WIDGET_SCHEMA_VERSION,
            "name": name,
            "frequency": frequency,
        }
    )
