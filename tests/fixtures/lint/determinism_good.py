# reprolint: module=repro.sim.fake_fixture
"""Good: randomness flows through an explicitly seeded generator."""

import numpy as np


def simulate_segment(duration, seed):
    rng = np.random.default_rng(seed)  # seeded: bit-identical every run
    jitter = rng.random()
    return jitter * duration
