"""Good: output flows through the Console rendering layer."""

from repro.obs.logging import Console


def report(value):
    ui = Console()
    ui.out(f"value = {value}")
    ui.info("done")
