"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import config
from repro.memory.controller import MemoryControllerModel
from repro.memory.dram import lpddr3_device
from repro.memory.timings import timings_for_frequency
from repro.perf.scalability import amdahl_speedup
from repro.power.cstates import CState, CStateResidency
from repro.power.energy import EnergyMetrics
from repro.power.models import ActivityVector, ComputePowerModel
from repro.soc.skylake import build_skylake_soc
from repro.soc.vf_curves import VFCurve
from repro.soc.vr import RailName, VoltageRegulator
from repro.workloads.trace import Phase


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

frequencies = st.floats(min_value=2e8, max_value=2.9e9, allow_nan=False)
voltscales = st.floats(min_value=0.5, max_value=1.0, allow_nan=False)
bandwidths = st.floats(min_value=0.0, max_value=30e9, allow_nan=False)
fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def bottleneck_mixes(draw):
    """Random 6-way bottleneck mixes that sum to one."""
    raw = [draw(st.floats(min_value=1e-3, max_value=1.0)) for _ in range(6)]
    total = sum(raw)
    return [value / total for value in raw]


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------

class TestVfCurveProperties:
    @given(frequency=frequencies)
    @settings(max_examples=60, deadline=None)
    def test_voltage_within_curve_bounds(self, frequency):
        curve = VFCurve.from_points([(4e8, 0.58), (1.2e9, 0.65), (2.9e9, 1.02)])
        voltage = curve.voltage_at(frequency)
        assert curve.vmin <= voltage <= curve.vmax

    @given(f1=frequencies, f2=frequencies)
    @settings(max_examples=60, deadline=None)
    def test_voltage_monotone(self, f1, f2):
        curve = VFCurve.from_points([(4e8, 0.58), (1.2e9, 0.65), (2.9e9, 1.02)])
        lo, hi = min(f1, f2), max(f1, f2)
        assert curve.voltage_at(lo) <= curve.voltage_at(hi) + 1e-12


class TestPowerModelProperties:
    @given(frequency=frequencies, activity=fractions)
    @settings(max_examples=60, deadline=None)
    def test_cpu_power_positive_and_monotone_in_activity(self, frequency, activity):
        soc = build_skylake_soc()
        model = ComputePowerModel(
            cpu=soc.cpu, gfx=soc.gfx, uncore=soc.uncore,
            cpu_curve=soc.cpu_curve, gfx_curve=soc.gfx_curve,
        )
        power = model.cpu_power(frequency, activity=activity)
        full = model.cpu_power(frequency, activity=1.0)
        assert power > 0
        assert power <= full + 1e-12

    @given(scale=voltscales, frequency=st.sampled_from(list(config.LPDDR3_FREQUENCY_BINS)))
    @settings(max_examples=40, deadline=None)
    def test_mc_power_monotone_in_voltage(self, scale, frequency):
        from repro.memory.ddrio import DdrioModel
        from repro.memory.power import MemoryPowerModel

        model = MemoryPowerModel(device=lpddr3_device(), ddrio=DdrioModel())
        assert model.memory_controller_power(frequency, scale) <= model.memory_controller_power(
            frequency, 1.0
        ) + 1e-12


class TestControllerProperties:
    @given(demand=bandwidths)
    @settings(max_examples=60, deadline=None)
    def test_loaded_latency_at_least_unloaded(self, demand):
        controller = MemoryControllerModel(device=lpddr3_device())
        assert controller.loaded_latency(demand, 1.6e9) >= controller.unloaded_latency(1.6e9) - 1e-15

    @given(demand=bandwidths, frequency=st.sampled_from(list(config.LPDDR3_FREQUENCY_BINS)))
    @settings(max_examples=60, deadline=None)
    def test_utilization_bounded(self, demand, frequency):
        controller = MemoryControllerModel(device=lpddr3_device())
        assert 0.0 <= controller.utilization(demand, frequency) <= 1.0

    @given(frequency=st.floats(min_value=0.5e9, max_value=2.4e9))
    @settings(max_examples=40, deadline=None)
    def test_peak_bandwidth_scales_linearly(self, frequency):
        timings = timings_for_frequency(frequency, "lpddr3")
        assert timings.peak_bandwidth == pytest.approx(frequency * 16, rel=1e-9)


class TestPhaseProperties:
    @given(mix=bottleneck_mixes(), demand=bandwidths)
    @settings(max_examples=80, deadline=None)
    def test_any_normalised_mix_builds_a_valid_phase(self, mix, demand):
        compute, gfx, lat, bw, io, other = mix
        phase = Phase(
            name="prop", duration=1.0,
            compute_fraction=compute, gfx_fraction=gfx,
            memory_latency_fraction=lat, memory_bandwidth_fraction=bw,
            io_fraction=io, other_fraction=other,
            cpu_bandwidth_demand=demand,
        )
        assert math.isclose(sum(phase.fraction_vector()), 1.0, rel_tol=1e-6)
        assert 0.0 <= phase.scalability_with_cpu_frequency <= 1.0

    @given(mix=bottleneck_mixes(), demand=bandwidths)
    @settings(max_examples=60, deadline=None)
    def test_slowdown_positive_for_valid_states(self, platform, mix, demand):
        compute, gfx, lat, bw, io, other = mix
        phase = Phase(
            name="prop", duration=1.0,
            compute_fraction=compute, gfx_fraction=gfx,
            memory_latency_fraction=lat, memory_bandwidth_fraction=bw,
            io_fraction=io, other_fraction=other,
            cpu_bandwidth_demand=demand,
        )
        from repro.soc.domains import SoCState

        low = SoCState(
            dram_frequency=1.06e9, interconnect_frequency=0.4e9,
            v_sa_scale=0.8, v_io_scale=0.85,
        )
        slowdown = platform.performance_model.slowdown(phase, low)
        assert slowdown.total > 0
        assert slowdown.achieved_bandwidth >= 0


class TestMetricsProperties:
    @given(
        energy=st.floats(min_value=1e-6, max_value=1e3),
        time=st.floats(min_value=1e-6, max_value=1e3),
    )
    @settings(max_examples=60, deadline=None)
    def test_energy_metric_identities(self, energy, time):
        metrics = EnergyMetrics(energy_joules=energy, execution_time_seconds=time)
        assert metrics.average_power == pytest.approx(energy / time)
        assert metrics.edp == pytest.approx(energy * time)
        assert metrics.performance_improvement_over(metrics) == pytest.approx(0.0)
        assert metrics.power_reduction_vs(metrics) == pytest.approx(0.0)

    @given(scalability=fractions, ratio=st.floats(min_value=0.2, max_value=3.0))
    @settings(max_examples=80, deadline=None)
    def test_amdahl_speedup_bounds(self, scalability, ratio):
        speedup = amdahl_speedup(scalability, ratio)
        lo, hi = min(1.0, ratio), max(1.0, ratio)
        assert lo - 1e-9 <= speedup <= hi + 1e-9


class TestResidencyProperties:
    @given(c0=st.floats(min_value=0.01, max_value=0.9), c2=st.floats(min_value=0.0, max_value=0.09))
    @settings(max_examples=60, deadline=None)
    def test_residency_partition(self, c0, c2):
        c8 = 1.0 - c0 - c2
        profile = CStateResidency({CState.C0: c0, CState.C2: c2, CState.C8: c8})
        assert profile.active_fraction + profile.idle_fraction == pytest.approx(1.0)
        assert profile.dram_active_fraction == pytest.approx(c0 + c2)

    @given(
        c0=st.floats(min_value=0.05, max_value=0.5),
        new_active=st.floats(min_value=0.05, max_value=0.99),
    )
    @settings(max_examples=60, deadline=None)
    def test_scaled_active_still_sums_to_one(self, c0, new_active):
        profile = CStateResidency({CState.C0: c0, CState.C8: 1.0 - c0})
        scaled = profile.scaled_active(new_active)
        assert sum(scaled.residencies.values()) == pytest.approx(1.0)


class TestRegulatorProperties:
    @given(scale=voltscales)
    @settings(max_examples=60, deadline=None)
    def test_transition_time_symmetric(self, scale):
        regulator = VoltageRegulator(rail=RailName.V_SA, nominal_voltage=0.55, min_voltage=0.27)
        down = regulator.transition_time(0.55 * scale)
        regulator.set_scale(scale)
        up = regulator.transition_time(0.55)
        assert down == pytest.approx(up)


class TestActivityVectorProperties:
    @given(cpu=fractions, gfx=fractions, io=fractions, bandwidth=bandwidths)
    @settings(max_examples=60, deadline=None)
    def test_valid_ranges_always_construct(self, cpu, gfx, io, bandwidth):
        vector = ActivityVector(
            cpu_activity=cpu, gfx_activity=gfx, io_activity=io, memory_bandwidth=bandwidth
        )
        assert vector.memory_bandwidth == bandwidth
