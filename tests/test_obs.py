"""The repro.obs telemetry layer: metrics, spans, sinks, traces, and the
instrumented runtime -- including the hard guarantee that telemetry is inert
with respect to results (bit-identical payloads and hashes, on or off)."""

import json

import pytest

from repro import obs
from repro.obs import (
    Console,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    read_jsonl,
    render_metrics_text,
    summarize_trace_events,
)
from repro.obs import state as obs_state
from repro.obs.metrics import NULL_INSTRUMENT
from repro.runtime.cache import ResultCache
from repro.runtime.cli import main
from repro.runtime.executor import ParallelExecutor, SerialExecutor
from repro.runtime.jobs import (
    PlatformSpec,
    PolicySpec,
    SimSpec,
    SimulationJob,
    TraceSpec,
    execute_job,
    execute_job_with_stats,
)
from repro.experiments.runner import ExperimentRuntime
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.platform import build_platform


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends in the disabled default scope."""
    obs.reset()
    yield
    obs.reset()


def _tiny_job(name="470.lbm", policy="baseline", max_time=0.05):
    return SimulationJob(
        trace=TraceSpec.make("spec", name=name, duration=0.05),
        policy=PolicySpec.make(policy),
        platform=PlatformSpec(tdp=4.5),
        sim=SimSpec(max_simulated_time=max_time),
    )


class TestMetricsRegistry:
    def test_instruments_accumulate(self):
        registry = MetricsRegistry("t")
        registry.counter("a").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe(3.0)
        with registry.timer("t").time():
            pass
        snap = registry.snapshot()
        assert snap["counters"]["a"] == 3
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["h"] == {"count": 2, "sum": 4.0, "min": 1.0, "max": 3.0}
        assert snap["timers"]["t"]["count"] == 1
        json.dumps(snap)  # snapshot must stay JSON-able

    def test_merge_combines_worker_snapshots(self):
        parent, worker = MetricsRegistry("p"), MetricsRegistry("w")
        parent.counter("jobs").inc(2)
        worker.counter("jobs").inc(3)
        worker.gauge("depth").set(5)
        worker.histogram("lat").observe(0.25)
        parent.histogram("lat").observe(4.0)
        parent.merge(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["jobs"] == 5
        assert snap["gauges"]["depth"] == 5
        assert snap["histograms"]["lat"] == {"count": 2, "sum": 4.25, "min": 0.25, "max": 4.0}

    def test_render_text(self):
        registry = MetricsRegistry("t")
        registry.counter("engine.runs").inc(4)
        text = render_metrics_text(registry.snapshot(), title="profile")
        assert text.startswith("profile:")
        assert "engine.runs: 4" in text
        assert render_metrics_text(MetricsRegistry().snapshot()).endswith("(empty)")


class TestAmbientState:
    def test_disabled_by_default_returns_null_instrument(self):
        assert not obs.enabled()
        assert obs.counter("x") is NULL_INSTRUMENT
        obs.counter("x").inc(100)  # no-op, not an error
        assert obs.snapshot()["counters"] == {}

    def test_enable_routes_to_live_registry(self):
        obs.enable()
        obs.counter("x").inc(2)
        assert obs.snapshot()["counters"]["x"] == 2

    def test_scoped_isolates_registry_and_restores_parent(self):
        obs.enable()
        obs.counter("outer").inc()
        with obs_state.scoped() as scope:
            obs.counter("inner").inc()
            assert "outer" not in scope.registry.snapshot()["counters"]
        assert "inner" not in obs.snapshot()["counters"]
        assert obs.snapshot()["counters"]["outer"] == 1

    def test_scoped_pops_on_exception(self):
        before = obs_state.current()
        with pytest.raises(RuntimeError):
            with obs_state.scoped():
                raise RuntimeError("boom")
        assert obs_state.current() is before

    def test_scoped_inherits_sinks(self):
        sink = MemorySink()
        obs.enable()
        obs.add_sink(sink)
        with obs_state.scoped():
            obs.emit({"type": "ping"})
        assert sink.of_type("ping")

    def test_merge_snapshot_requires_enabled(self):
        worker = MetricsRegistry("w")
        worker.counter("n").inc(9)
        obs.merge_snapshot(worker.snapshot())  # disabled: dropped
        assert obs.snapshot()["counters"] == {}
        obs.enable()
        obs.merge_snapshot(worker.snapshot())
        assert obs.snapshot()["counters"]["n"] == 9


class TestSpans:
    def test_disabled_spans_are_free_and_silent(self):
        sink = MemorySink()
        obs.add_sink(sink)
        with obs.span("quiet", key="value"):
            pass
        assert sink.events == []

    def test_nested_spans_record_depth_and_duration(self):
        sink = MemorySink()
        obs.enable()
        obs.add_sink(sink)
        with obs.span("outer"):
            with obs.span("inner", detail=1):
                pass
        events = sink.of_type("span")
        assert [e["name"] for e in events] == ["inner", "outer"]
        assert events[0]["depth"] == 1 and events[1]["depth"] == 0
        assert all(e["duration_s"] >= 0 for e in events)
        assert events[0]["detail"] == 1
        assert obs.snapshot()["timers"]["span.outer"]["count"] == 1

    def test_span_marks_errors(self):
        sink = MemorySink()
        obs.enable()
        obs.add_sink(sink)
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("nope")
        (event,) = sink.of_type("span")
        assert event["error"] == "ValueError"


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"type": "a", "n": 1})
            sink.emit({"type": "b"})
        assert read_jsonl(path) == [{"type": "a", "n": 1}, {"type": "b"}]

    def test_jsonl_appends_whole_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"type": "first"})
        with JsonlSink(path) as sink:
            sink.emit({"type": "second"})
        assert [e["type"] for e in read_jsonl(path)] == ["first", "second"]


class TestConsole:
    def test_stream_discipline(self, capsys):
        ui = Console()
        ui.out("primary")
        ui.info("decoration")
        ui.warning("careful")
        ui.error("broken")
        captured = capsys.readouterr()
        assert captured.out == "primary\ndecoration\n"
        assert captured.err == "careful\nbroken\n"

    def test_info_stream_override_for_exports(self, capsys):
        import sys

        ui = Console(info_stream=sys.stderr)
        ui.out("document")
        ui.info("header")
        captured = capsys.readouterr()
        assert captured.out == "document\n"
        assert "header" in captured.err

    def test_level_gating_spares_primary_output(self, capsys):
        obs.set_level("error")
        ui = Console()
        ui.info("hidden")
        ui.debug("hidden too")
        ui.out("always")
        ui.error("shown")
        captured = capsys.readouterr()
        assert captured.out == "always\n"
        assert captured.err == "shown\n"

    def test_logs_mirror_to_sinks_when_enabled(self):
        sink = MemorySink()
        obs.enable()
        obs.add_sink(sink)
        Console().info("hello")
        (event,) = sink.of_type("log")
        assert event["level"] == "info" and event["message"] == "hello"


class TestEngineTrace:
    def test_recorder_captures_segment_timeline(self):
        platform = build_platform()
        from repro.runtime.jobs import _build_sysscale

        engine = SimulationEngine(
            platform, SimulationConfig(max_simulated_time=0.2, trace_segments=True)
        )
        trace = TraceSpec.make("spec", name="470.lbm", duration=0.2).build()
        engine.run(trace, _build_sysscale(platform))
        recorder = engine.last_run_trace
        assert recorder is not None
        summary = recorder.summary()
        stats = engine.last_run_stats
        assert summary["segments"] == stats.segments
        assert summary["ticks"] == stats.ticks
        assert summary["memo_hits"] == stats.memo_hits
        assert summary["simulated_s"] > 0
        assert summary["dram_residency_s"]
        events = list(recorder.events())
        assert events[-1]["type"] == "engine.run"
        assert sum(1 for e in events if e["type"] == "engine.segment") == stats.segments

    def test_tracing_never_changes_results(self):
        platform = build_platform()
        from repro.runtime.jobs import _build_sysscale

        trace = TraceSpec.make("spec", name="433.milc", duration=0.2).build()
        plain = SimulationEngine(
            platform, SimulationConfig(max_simulated_time=0.2)
        ).run(trace, _build_sysscale(platform))
        traced = SimulationEngine(
            platform, SimulationConfig(max_simulated_time=0.2, trace_segments=True)
        ).run(trace, _build_sysscale(platform))
        assert plain.to_dict() == traced.to_dict()

    def test_trace_flag_is_inert_to_job_hashes(self):
        """trace_segments lives on SimulationConfig only -- SimSpec (and
        therefore job identity and the cache key space) never sees it."""
        plain = SimSpec.from_config(SimulationConfig(max_simulated_time=0.05))
        traced = SimSpec.from_config(
            SimulationConfig(max_simulated_time=0.05, trace_segments=True)
        )
        assert plain == traced
        assert not hasattr(SimSpec(), "trace_segments")

    def test_execute_job_is_bit_identical_under_telemetry(self):
        job = _tiny_job()
        baseline = execute_job(job)
        sink = MemorySink()
        with obs_state.scoped(sinks=[sink], trace_segments=True):
            instrumented, stats = execute_job_with_stats(job)
        assert instrumented == baseline
        assert stats is not None and stats.ticks > 0
        run_events = sink.of_type("engine.run")
        assert len(run_events) == 1
        assert run_events[0]["job_hash"] == job.content_hash
        assert sink.of_type("engine.segment")

    def test_summarize_trace_events(self):
        job = _tiny_job()
        sink = MemorySink()
        with obs_state.scoped(sinks=[sink], trace_segments=True):
            with obs.span("test.root"):
                execute_job_with_stats(job)
        summary = summarize_trace_events(sink.events)
        assert summary["engine"]["runs"] == 1
        assert summary["engine"]["segments"] > 0
        assert 0.0 <= summary["engine"]["memo_hit_rate"] <= 1.0
        assert summary["spans"]["test.root"]["count"] == 1
        assert summary["by_type"]["engine.segment"] == summary["engine"]["segments"]


class TestStatsSurfacing:
    def test_outcomes_carry_engine_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = [_tiny_job(), _tiny_job(policy="sysscale")]
        cold = SerialExecutor().run(jobs, cache=cache)
        assert all(o.stats is not None for o in cold.outcomes)
        totals = cold.engine_stats()
        assert totals["runs"] == 2
        assert totals["ticks"] == sum(o.stats.ticks for o in cold.outcomes)
        # Warm run: everything from cache, no engine ran, stats stay None.
        warm = SerialExecutor().run(jobs, cache=cache)
        assert all(o.stats is None for o in warm.outcomes)
        assert warm.engine_stats()["runs"] == 0

    def test_duplicate_submissions_count_one_run(self):
        job = _tiny_job()
        report = SerialExecutor().run([job, job, job])
        assert report.engine_stats()["runs"] == 1
        assert all(o.stats is not None for o in report.outcomes)


class TestRuntimeAccounting:
    def test_properties_are_registry_backed(self):
        runtime = ExperimentRuntime()
        report = runtime.run_jobs([_tiny_job(), _tiny_job()])
        assert report.executed == 1
        assert runtime.submitted == 2
        assert runtime.unique == 1
        assert runtime.executed == 1
        snap = runtime.metrics.snapshot()
        assert snap["counters"]["runtime.jobs_submitted"] == 2
        assert snap["counters"]["runtime.engine_runs"] == 1
        assert snap["counters"]["runtime.engine_ticks"] > 0
        assert snap["timers"]["runtime.batch_seconds"]["count"] == 1

    def test_accounting_since_uses_live_counters(self, tmp_path):
        runtime = ExperimentRuntime(cache=ResultCache(tmp_path / "c"))
        runtime.run_jobs([_tiny_job()])
        before = runtime.accounting()
        runtime.run_jobs([_tiny_job()])
        delta = runtime.accounting().since(before)
        assert delta.submitted == 1
        assert delta.cache_hits == 1
        assert delta.executed == 0


class TestExecutorInstrumentation:
    def test_serial_executor_emits_metrics(self, tmp_path):
        obs.enable()
        cache = ResultCache(tmp_path / "cache")
        jobs = [_tiny_job(), _tiny_job(), _tiny_job(policy="sysscale")]
        SerialExecutor().run(jobs, cache=cache)
        snap = obs.snapshot()
        assert snap["counters"]["executor.submitted"] == 3
        assert snap["counters"]["executor.unique"] == 2
        assert snap["counters"]["executor.executed"] == 2
        assert snap["counters"]["engine.runs"] == 2
        assert snap["counters"]["cache.misses"] == 2
        assert snap["counters"]["cache.writes"] == 2
        assert snap["histograms"]["executor.dedup_ratio"]["count"] == 1
        SerialExecutor().run(jobs, cache=cache)
        snap = obs.snapshot()
        assert snap["counters"]["executor.cache_hits"] == 2
        assert snap["counters"]["cache.hits"] == 2
        # No second engine pass: the engine counters did not move.
        assert snap["counters"]["engine.runs"] == 2


class TestParallelExecutorTelemetry:
    """Warm-pool ParallelExecutor: ordering, cache stats, metric aggregation."""

    def test_progress_ordering_and_cache_stats_warm_pool(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = [
            _tiny_job(),
            _tiny_job(policy="sysscale"),
            _tiny_job(name="433.milc"),
            _tiny_job(),  # duplicate
        ]
        updates = []
        with ParallelExecutor(max_workers=2) as pool:
            cold = pool.run(jobs, cache=cache, progress=updates.append)
            assert [u.completed for u in updates] == [1, 2, 3]
            assert all(not u.from_cache for u in updates)
            assert cache.stats.misses == 3
            assert cache.stats.writes == 3

            updates.clear()
            warm = pool.run(jobs, cache=cache, progress=updates.append)
            assert [u.completed for u in updates] == [1, 2, 3]
            assert all(u.from_cache for u in updates)
            assert cache.stats.hits == 3
        assert warm.payloads() == cold.payloads()
        assert warm.executed == 0

    def test_worker_metrics_aggregate_across_runs(self, tmp_path):
        obs.enable()
        jobs_a = [_tiny_job(), _tiny_job(policy="sysscale")]
        jobs_b = [_tiny_job(name="433.milc"), _tiny_job(name="433.milc", policy="sysscale")]
        with ParallelExecutor(max_workers=2) as pool:
            report_a = pool.run(jobs_a)
            snap = obs.snapshot()
            # Worker-side engine counters merged back through the pool.
            assert snap["counters"]["engine.runs"] == 2
            assert snap["counters"]["engine.ticks"] == report_a.engine_stats()["ticks"]
            report_b = pool.run(jobs_b)  # same warm pool, second batch
            snap = obs.snapshot()
            assert snap["counters"]["engine.runs"] == 4
            assert snap["counters"]["engine.ticks"] == (
                report_a.engine_stats()["ticks"] + report_b.engine_stats()["ticks"]
            )
            assert snap["counters"]["executor.pool_reuse"] == 1
            assert snap["counters"]["executor.pool_starts"] == 1
            assert snap["gauges"]["executor.workers"] == 2
            assert snap["gauges"]["executor.in_flight"] == 0

    def test_parallel_payloads_identical_with_telemetry(self):
        jobs = [_tiny_job(), _tiny_job(policy="sysscale")]
        with ParallelExecutor(max_workers=2) as pool:
            plain = pool.run(jobs)
        obs.enable()
        with ParallelExecutor(max_workers=2) as pool:
            instrumented = pool.run(jobs)
        assert plain.payloads() == instrumented.payloads()


class TestCliTelemetry:
    def test_trace_out_and_profile(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        assert main([
            "run", "fig7", "--quick", "--duration", "0.05", "--max-time", "0.05",
            "--cache-dir", str(tmp_path / "cache"),
            "--trace-out", str(trace_path), "--profile",
        ]) == 0
        captured = capsys.readouterr()
        assert "profile:" in captured.out
        assert "engine.runs" in captured.out
        events = read_jsonl(trace_path)
        types = {e["type"] for e in events}
        assert {"span", "engine.segment", "engine.run", "log"} <= types
        # Ambient state is reset after the command.
        assert not obs.enabled()

    def test_trace_out_keeps_json_stdout_pure(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        assert main([
            "run", "fig7", "--quick", "--duration", "0.05", "--max-time", "0.05",
            "--no-cache", "--json", "--trace-out", str(trace_path), "--profile",
        ]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout is exactly one JSON document
        assert "profile:" in captured.err

    def test_telemetry_is_inert_to_exports(self, tmp_path, capsys):
        args = [
            "run", "fig7", "--quick", "--duration", "0.05", "--max-time", "0.05",
            "--no-cache", "--json",
        ]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main(args + [
            "--trace-out", str(tmp_path / "t.jsonl"), "--profile",
        ]) == 0
        assert capsys.readouterr().out == plain

    def test_trace_describe(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        assert main([
            "run", "fig7", "--quick", "--duration", "0.05", "--max-time", "0.05",
            "--cache-dir", str(tmp_path / "cache"), "--trace-out", str(trace_path),
        ]) == 0
        capsys.readouterr()
        assert main(["trace", "describe", str(trace_path)]) == 0
        text = capsys.readouterr().out
        assert "engine:" in text and "memo hit rate" in text
        assert main(["trace", "describe", str(trace_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["engine"]["segments"] > 0
        assert summary["engine"]["runs"] >= 1

    def test_trace_describe_missing_file(self, capsys):
        assert main(["trace", "describe", "/nonexistent/trace.jsonl"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_log_level_quiets_decorations(self, tmp_path, capsys):
        assert main([
            "run", "fig5", "--quick", "--no-cache", "--log-level", "error",
        ]) == 0
        captured = capsys.readouterr()
        assert "== fig5 ==" not in captured.out  # info gated
        assert "Fig. 5" in captured.out  # primary report still printed


class TestSessionMetrics:
    def test_session_exposes_runtime_registry(self, tmp_path):
        from repro.api import Session

        session = Session(cache_dir=str(tmp_path / "cache"), max_time=0.05)
        session.simulate("spec", "baseline", name="470.lbm", duration=0.05)
        snap = session.metrics.snapshot()
        assert snap["counters"]["runtime.jobs_submitted"] == 1
        assert snap["counters"]["runtime.engine_runs"] == 1
        session.close()
