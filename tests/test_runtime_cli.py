"""The ``python -m repro`` command line (registry-driven dispatch + exports)."""

import json

import pytest

from repro.experiments.api import registry
from repro.experiments.report import ExperimentReport
from repro.runtime.cli import main
from repro.runtime.campaign import CAMPAIGNS


class TestList:
    def test_lists_every_target(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in registry():
            assert name in output
        for name in CAMPAIGNS:
            assert name in output

    def test_prints_registered_descriptions(self, capsys):
        """``list`` shows each experiment's title and spec description."""
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for spec in registry().values():
            assert spec.title in output
            if spec.description:
                assert spec.description in output

    def test_run_help_is_generated_from_registry(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--help"])
        output = capsys.readouterr().out
        for name, spec in registry().items():
            assert name in output
            if spec.ignored_flags:
                assert f"ignores {'/'.join(spec.ignored_flags)}" in output


class TestRun:
    def test_unknown_target_fails(self, capsys):
        assert main(["run", "fig99", "--no-cache"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_runs_cheap_experiment(self, capsys):
        assert main(["run", "table2", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "== table2 ==" in output
        assert "runtime:" in output

    def test_ignored_flag_warning_is_derived_from_spec(self, capsys):
        """fig5 declares it ignores --duration; the CLI warns from the spec."""
        assert main(["run", "fig5", "--no-cache", "--duration", "0.25"]) == 0
        captured = capsys.readouterr()
        assert "--duration do(es) not apply to 'fig5'" in captured.err

    def test_cache_hit_counter_reports_zero_new_simulations(self, tmp_path, capsys):
        """Acceptance: a warm-cache rerun performs zero new simulations, and
        the CLI summary's counters prove it."""
        args = [
            "run", "fig7", "--quick",
            "--duration", "0.05", "--max-time", "0.05",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "0 cache hit(s)" in cold

        assert main(args) == 0
        warm = capsys.readouterr().out
        assert ", 0 simulated" in warm
        assert "0 cache hit(s)" not in warm

        def averages(output):
            return [
                line for line in output.splitlines()
                if line.strip().startswith("average/")
            ]

        assert averages(warm) == averages(cold)
        assert averages(cold)

    def test_parallel_jobs_flag(self, tmp_path, capsys):
        args = [
            "run", "fig7", "--quick", "--jobs", "2",
            "--duration", "0.05", "--max-time", "0.05",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        assert "simulated" in capsys.readouterr().out

    def test_campaign_target_with_progress(self, capsys):
        assert main([
            "run", "spec-tdp", "--quick", "--no-cache", "--progress",
            "--max-time", "0.03",
        ]) == 0
        output = capsys.readouterr().out
        assert "jobs:" in output
        assert "[" in output  # progress lines


class TestExports:
    def test_json_stdout_is_pure_and_round_trips(self, tmp_path, capsys):
        args = [
            "run", "fig7", "--quick", "--json",
            "--duration", "0.05", "--max-time", "0.05",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        captured = capsys.readouterr()
        document = json.loads(captured.out)  # stdout is one JSON document
        report = ExperimentReport.from_dict(document)
        assert report.experiment == "fig7"
        assert report.to_dict() == document
        assert "runtime:" in captured.err  # decorations moved to stderr

    def test_warm_rerun_exports_identical_results(self, tmp_path, capsys):
        """Acceptance: cold vs. warm cache export bit-identical numbers (the
        volatile run accounting is the only differing field)."""
        args = [
            "run", "fig7", "--quick", "--json",
            "--duration", "0.05", "--max-time", "0.05",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm != cold  # run accounting differs...
        cold.pop("run")
        warm.pop("run")
        assert warm == cold  # ...and nothing else does

    def test_csv_export_is_stable_across_cache_states(self, tmp_path, capsys):
        args = [
            "run", "fig5", "--csv", "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        assert cold.startswith("experiment,fig5")
        assert "metrics" in cold

    def test_multiple_targets_emit_a_json_array(self, tmp_path, capsys):
        args = [
            "run", "table1", "table2", "--json", "--no-cache",
        ]
        assert main(args) == 0
        documents = json.loads(capsys.readouterr().out)
        assert [d["experiment"] for d in documents] == ["table1", "table2"]
        for document in documents:
            ExperimentReport.from_dict(document)

    def test_out_writes_files(self, tmp_path, capsys):
        out_dir = tmp_path / "reports"
        args = [
            "run", "table1", "table2", "--no-cache", "--out", str(out_dir),
        ]
        assert main(args) == 0
        capsys.readouterr()
        for name in ("table1", "table2"):
            document = json.loads((out_dir / f"{name}.json").read_text())
            assert ExperimentReport.from_dict(document).experiment == name

    def test_out_single_file_csv(self, tmp_path, capsys):
        out_file = tmp_path / "table1.csv"
        args = ["run", "table1", "--no-cache", "--csv", "--out", str(out_file)]
        assert main(args) == 0
        capsys.readouterr()
        assert out_file.read_text().startswith("experiment,table1")

    def test_json_and_csv_are_mutually_exclusive(self, capsys):
        assert main(["run", "table1", "--json", "--csv", "--no-cache"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_repeated_target_exports_once_per_request(self, capsys):
        assert main(["run", "table1", "table1", "--json", "--no-cache"]) == 0
        documents = json.loads(capsys.readouterr().out)
        assert [d["experiment"] for d in documents] == ["table1", "table1"]

    def test_out_existing_file_with_multiple_targets_fails_cleanly(
        self, tmp_path, capsys
    ):
        out_file = tmp_path / "results.json"
        out_file.write_text("{}")
        args = ["run", "table1", "table2", "--no-cache", "--out", str(out_file)]
        assert main(args) == 2
        assert "must be a directory" in capsys.readouterr().err

    def test_out_repeated_target_writes_numbered_files(self, tmp_path, capsys):
        out_dir = tmp_path / "reports"
        args = ["run", "table1", "table1", "--no-cache", "--out", str(out_dir)]
        assert main(args) == 0
        capsys.readouterr()
        for filename in ("table1.json", "table1.2.json"):
            document = json.loads((out_dir / filename).read_text())
            assert document["experiment"] == "table1"

    def test_out_files_are_written_incrementally(self, tmp_path, capsys):
        """A failure in a later target must not discard finished reports."""
        out_dir = tmp_path / "reports"
        args = [
            "run", "table1", "fig7", "--no-cache", "--out", str(out_dir),
            "--duration", "0.05", "--max-time", "0.05", "--quick",
        ]
        assert main(args) == 0
        captured = capsys.readouterr().err
        # table1's file is announced before fig7 even starts running.
        assert captured.index("wrote") < captured.index("== fig7 ==")
        assert (out_dir / "table1.json").exists()


class TestScenarioSweepExport:
    def test_sweep_json_stdout_is_pure(self, capsys):
        assert main([
            "scenarios", "sweep", "--quick", "--json", "--no-cache",
            "--max-time", "0.05",
        ]) == 0
        captured = capsys.readouterr()
        document = json.loads(captured.out)  # no trailing decorations
        assert document["rows"]
        assert "runtime:" in captured.err


class TestBench:
    def test_quick_bench_writes_document_and_passes_checks(self, tmp_path, capsys):
        """`repro bench --quick` is the CI smoke: exit 0 means every
        bit-identity check (fast vs. reference, cold vs. warm cache, serial
        vs. parallel, telemetry on vs. off) held, and the document records the
        speedup."""
        out = tmp_path / "BENCH_6.json"
        assert main(["bench", "--quick", "--jobs", "2", "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "all checks passed" in captured.out
        document = json.loads(out.read_text())
        assert document["ok"] is True
        assert document["quick"] is True
        assert all(document["checks"].values())
        assert document["results"]["engine"]["speedup"] >= 5.0
        assert document["results"]["engine"]["bit_identical"] is True
        assert document["results"]["jobs_serial"]["warm_executed"] == 0
        telemetry = document["results"]["engine_telemetry"]
        assert telemetry["bit_identical"] is True
        assert telemetry["trace_segments"] > 0

    def test_bench_rejects_bad_jobs(self, capsys):
        assert main(["bench", "--quick", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestCache:
    def test_info_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main([
            "run", "fig7", "--quick", "--duration", "0.05", "--max-time", "0.05",
            "--cache-dir", cache_dir,
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", cache_dir]) == 0
        assert "entries:" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", cache_dir, "--clear"]) == 0
        assert "removed" in capsys.readouterr().out
