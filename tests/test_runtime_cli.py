"""The ``python -m repro`` command line."""

import pytest

from repro.runtime.cli import EXPERIMENTS, main
from repro.runtime.campaign import CAMPAIGNS


class TestList:
    def test_lists_every_target(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output
        for name in CAMPAIGNS:
            assert name in output


class TestRun:
    def test_unknown_target_fails(self, capsys):
        assert main(["run", "fig99", "--no-cache"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_runs_cheap_experiment(self, capsys):
        assert main(["run", "table2", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "== table2 ==" in output
        assert "runtime:" in output

    def test_cache_hit_counter_reports_zero_new_simulations(self, tmp_path, capsys):
        """Acceptance: a warm-cache rerun performs zero new simulations, and
        the CLI summary's counters prove it."""
        args = [
            "run", "fig7", "--quick",
            "--duration", "0.05", "--max-time", "0.05",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "0 cache hit(s)" in cold

        assert main(args) == 0
        warm = capsys.readouterr().out
        assert ", 0 simulated" in warm
        assert "0 cache hit(s)" not in warm

        def averages(output):
            return [
                line for line in output.splitlines() if line.startswith("  average:")
            ]

        assert averages(warm) == averages(cold)

    def test_parallel_jobs_flag(self, tmp_path, capsys):
        args = [
            "run", "fig7", "--quick", "--jobs", "2",
            "--duration", "0.05", "--max-time", "0.05",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        assert "simulated" in capsys.readouterr().out

    def test_campaign_target_with_progress(self, capsys):
        assert main([
            "run", "spec-tdp", "--quick", "--no-cache", "--progress",
            "--max-time", "0.03",
        ]) == 0
        output = capsys.readouterr().out
        assert "jobs:" in output
        assert "[" in output  # progress lines


class TestCache:
    def test_info_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main([
            "run", "fig7", "--quick", "--duration", "0.05", "--max-time", "0.05",
            "--cache-dir", cache_dir,
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", cache_dir]) == 0
        assert "entries:" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", cache_dir, "--clear"]) == 0
        assert "removed" in capsys.readouterr().out
