"""Shared fixtures: expensive platform/threshold construction is session-scoped."""

from __future__ import annotations

import pytest

from repro.core.operating_points import build_default_operating_points
from repro.core.sysscale import default_thresholds
from repro.sim.engine import SimulationEngine
from repro.sim.platform import build_platform


@pytest.fixture(scope="session")
def platform():
    """The default Skylake 4.5 W evaluation platform."""
    return build_platform(tdp=4.5)


@pytest.fixture(scope="session")
def operating_points(platform):
    """The default high/low operating-point table."""
    return build_default_operating_points(platform)


@pytest.fixture(scope="session")
def thresholds(platform, operating_points):
    """Boundary-calibrated counter thresholds."""
    return default_thresholds(platform, operating_points)


@pytest.fixture(scope="session")
def engine(platform):
    """A simulation engine bound to the session platform."""
    return SimulationEngine(platform)
