"""The invariant linter: rules, fixtures, suppressions, baseline, CLI.

Every rule is exercised against a golden bad/good fixture pair under
``tests/fixtures/lint`` -- the same files ``repro lint --explain`` renders,
so examples and behavior cannot drift apart.  The meta-test at the bottom
is the repo's own gate: the shipped tree must lint clean with no baseline
crutch.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import RULES, Baseline, Finding, lint_paths
from repro.analysis.lint.cli import DEFAULT_BASELINE, run_lint
from repro.analysis.lint.explain import explain_rule
from repro.analysis.lint.layers import layer_of, layering_violation
from repro.runtime import cli as repro_cli

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"


def _slug(rule_name):
    return rule_name.replace("-", "_")


def _lint_fixture(name, **kwargs):
    return lint_paths(
        [str(FIXTURES / name)], repo_root=REPO_ROOT, **kwargs
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_at_least_five_rules(self):
        assert len(RULES) >= 5

    def test_expected_rules_present(self):
        assert set(RULES) >= {
            "determinism",
            "hash-surface",
            "layering",
            "telemetry-inert",
            "console",
        }

    @pytest.mark.parametrize("rule_name", sorted(RULES))
    def test_rule_metadata(self, rule_name):
        rule = RULES[rule_name]
        assert rule.severity in {"error", "warning"}
        assert rule.summary
        assert len(rule.rationale) > 40  # a real rationale, not a stub

    @pytest.mark.parametrize("rule_name", sorted(RULES))
    def test_every_rule_has_fixture_pair(self, rule_name):
        assert (FIXTURES / f"{_slug(rule_name)}_bad.py").is_file()
        assert (FIXTURES / f"{_slug(rule_name)}_good.py").is_file()


# ---------------------------------------------------------------------------
# Golden fixtures: each rule fires on its bad example, not on its good one
# ---------------------------------------------------------------------------


class TestGoldenFixtures:
    @pytest.mark.parametrize("rule_name", sorted(RULES))
    def test_bad_fixture_fires(self, rule_name):
        report = _lint_fixture(f"{_slug(rule_name)}_bad.py")
        fired = {finding.rule for finding in report.findings}
        assert rule_name in fired
        # The bad fixture is crafted for exactly one rule: no bycatch.
        assert fired == {rule_name}

    @pytest.mark.parametrize("rule_name", sorted(RULES))
    def test_good_fixture_clean(self, rule_name):
        report = _lint_fixture(f"{_slug(rule_name)}_good.py")
        assert report.findings == []
        assert report.errors == []

    def test_findings_carry_location_and_severity(self):
        report = _lint_fixture("determinism_bad.py")
        for finding in report.findings:
            assert finding.path.endswith("determinism_bad.py")
            assert finding.line > 0
            assert finding.severity == "error"
            assert finding.message


# ---------------------------------------------------------------------------
# Layer map
# ---------------------------------------------------------------------------


class TestLayers:
    def test_layer_of(self):
        assert layer_of("repro.hashing") == "base"
        assert layer_of("repro.sim.engine") == "model"
        assert layer_of("repro.obs.state") == "obs"
        assert layer_of("repro.runtime.jobs") == "runtime"
        assert layer_of("repro.runtime.cli") == "app"
        assert layer_of("numpy") is None

    def test_forbidden_edges(self):
        assert layering_violation("repro.sim.engine", "repro.obs.state")
        assert layering_violation("repro.obs.state", "repro.runtime.jobs")
        assert layering_violation("repro.power.models", "repro.runtime.cache")

    def test_allowed_edges(self):
        assert layering_violation("repro.runtime.jobs", "repro.sim.engine") is None
        assert layering_violation("repro.runtime.cli", "repro.obs.state") is None
        assert layering_violation("repro.sim.engine", "repro.config") is None


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestSuppression:
    def test_inline_pragma_waives_the_finding(self):
        report = _lint_fixture("suppressed.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_pragma_only_waives_named_rule(self, tmp_path):
        victim = tmp_path / "wrong_pragma.py"
        victim.write_text(
            'print("x")  # reprolint: disable=determinism\n', encoding="utf-8"
        )
        report = lint_paths([str(victim)], repo_root=tmp_path)
        assert [finding.rule for finding in report.findings] == ["console"]


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_round_trip_absorbs_known_findings(self, tmp_path):
        report = _lint_fixture("console_bad.py")
        assert report.findings
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(report.findings).save(baseline_path)
        reloaded = Baseline.load(baseline_path)
        gated = _lint_fixture("console_bad.py", baseline=reloaded)
        assert gated.findings == []
        assert gated.baselined == len(report.findings)

    def test_new_findings_still_surface(self):
        report = _lint_fixture("console_bad.py")
        baseline = Baseline.from_findings(report.findings[:1])
        gated = _lint_fixture("console_bad.py", baseline=baseline)
        assert len(gated.findings) == len(report.findings) - 1

    def test_multiplicity_is_respected(self):
        finding = Finding(
            rule="console", severity="warning", path="x.py", line=1, message="m"
        )
        twin = Finding(
            rule="console", severity="warning", path="x.py", line=9, message="m"
        )
        baseline = Baseline.from_findings([finding])
        assert baseline.filter_new([finding, twin]) == [twin]

    def test_committed_baseline_is_empty(self):
        data = json.loads((REPO_ROOT / DEFAULT_BASELINE).read_text())
        assert data == {"findings": []}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_exit_zero_on_clean_file(self):
        code = run_lint(
            [str(FIXTURES / "console_good.py")], repo_root=REPO_ROOT
        )
        assert code == 0

    @pytest.mark.parametrize("rule_name", sorted(RULES))
    def test_exit_nonzero_on_each_bad_fixture(self, rule_name):
        code = run_lint(
            [str(FIXTURES / f"{_slug(rule_name)}_bad.py")], repo_root=REPO_ROOT
        )
        assert code == 1

    def test_unknown_rule_is_usage_error(self, capsys):
        code = run_lint([], rules=["no-such-rule"], repo_root=REPO_ROOT)
        assert code == 2
        assert "no-such-rule" in capsys.readouterr().err

    def test_json_report_shape(self, capsys):
        code = run_lint(
            [str(FIXTURES / "layering_bad.py")], as_json=True, repo_root=REPO_ROOT
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["files_scanned"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "layering"
        assert finding["severity"] == "error"
        assert finding["line"] > 0

    def test_update_baseline_then_gate_passes(self, tmp_path, capsys):
        victim = tmp_path / "legacy.py"
        victim.write_text('print("legacy")\n', encoding="utf-8")
        assert run_lint([str(victim)], repo_root=tmp_path) == 1
        assert (
            run_lint([str(victim)], repo_root=tmp_path, update_baseline=True) == 0
        )
        assert (tmp_path / DEFAULT_BASELINE).is_file()
        capsys.readouterr()
        assert run_lint([str(victim)], repo_root=tmp_path) == 0

    def test_explain_renders_fixture_examples(self, capsys):
        for rule_name in sorted(RULES):
            code = run_lint([], explain=rule_name, repo_root=REPO_ROOT)
            assert code == 0
            text = capsys.readouterr().out
            assert RULES[rule_name].rationale[:40] in text.replace("\n", " ")
            assert "Fires on:" in text
            assert "Clean:" in text

    def test_explain_matches_rule_rationale(self):
        text = explain_rule("hash-surface", repo_root=REPO_ROOT)
        assert "WidgetSpec" in text  # sourced from the fixture, not prose

    def test_repro_cli_wires_lint_subcommand(self, capsys):
        code = repro_cli.main(["lint", str(FIXTURES / "console_good.py")])
        assert code == 0
        code = repro_cli.main(["lint", str(FIXTURES / "console_bad.py")])
        assert code == 1
        code = repro_cli.main(["lint", "--list-rules"])
        assert code == 0
        assert "determinism" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# The gate itself: the shipped tree is clean without a baseline crutch
# ---------------------------------------------------------------------------


class TestShippedTree:
    def test_zero_findings_over_the_repo(self):
        report = lint_paths(repo_root=REPO_ROOT)
        assert report.errors == []
        assert report.findings == [], "\n".join(
            finding.render() for finding in report.findings
        )
        assert report.files_scanned > 100  # the walk actually covered the tree

    def test_fixture_violations_are_not_swept_into_the_walk(self):
        report = lint_paths(repo_root=REPO_ROOT)
        assert not any("fixtures" in finding.path for finding in report.findings)
