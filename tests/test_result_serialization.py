"""Round-trip serialization of simulation results (backs the runtime cache)."""

import json

import pytest

from repro.baselines.fixed import FixedBaselinePolicy
from repro.sim.result import DomainEnergyBreakdown, SimulationResult
from repro.workloads.spec2006 import spec_workload


def _sample_result() -> SimulationResult:
    energy = DomainEnergyBreakdown()
    energy.add(compute=1.2345678901234567, io=0.3, memory=0.7071067811865476, platform_fixed=0.2)
    return SimulationResult(
        workload="470.lbm",
        policy="SysScale",
        execution_time=3.0000000000000004,
        energy=energy,
        transitions=17,
        transition_time=1.7e-4,
        low_point_time=1.9999999999999998,
        evaluation_count=99,
        average_cpu_frequency=1.23456789e9,
        average_gfx_frequency=3.1e8,
        average_dram_frequency=1.2e9,
        achieved_bandwidth_samples=[1.1e9, 2.2e9, 3.3333333333333335e9],
        notes={"extra": 0.1, "other": 2.5},
    )


class TestDomainEnergyBreakdown:
    def test_round_trip_exact(self):
        energy = DomainEnergyBreakdown(
            compute=0.1, io=0.2, memory=0.30000000000000004, platform_fixed=0.4
        )
        restored = DomainEnergyBreakdown.from_dict(energy.to_dict())
        assert restored == energy
        assert restored.total == energy.total

    def test_round_trip_through_json(self):
        energy = DomainEnergyBreakdown(compute=1 / 3, io=2 / 7, memory=1e-17, platform_fixed=0.0)
        restored = DomainEnergyBreakdown.from_dict(json.loads(json.dumps(energy.to_dict())))
        assert restored == energy


class TestSimulationResult:
    def test_round_trip_exact(self):
        result = _sample_result()
        restored = SimulationResult.from_dict(result.to_dict())
        assert restored == result

    def test_round_trip_through_json(self):
        """Floats survive JSON unchanged (repr round-trip), so cached results
        are bit-identical to freshly simulated ones."""
        result = _sample_result()
        restored = SimulationResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result
        assert restored.edp == result.edp
        assert restored.average_power == result.average_power

    def test_round_trip_of_engine_output(self, engine):
        trace = spec_workload("416.gamess", duration=0.1)
        result = engine.run(trace, FixedBaselinePolicy())
        restored = SimulationResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result

    def test_from_dict_validates(self):
        data = _sample_result().to_dict()
        data["execution_time"] = -1.0
        with pytest.raises(ValueError):
            SimulationResult.from_dict(data)
