"""Tests for the memory reference code (MRC) model."""

import pytest

from repro import config
from repro.memory.mrc import (
    MrcRegisterFile,
    MrcSram,
    MrcTrainingError,
    build_mrc_sram_for_bins,
    train_mrc,
)
from repro.memory.timings import timings_for_frequency


@pytest.fixture
def sram_and_sets():
    timing_sets = [timings_for_frequency(f, "lpddr3") for f in config.LPDDR3_FREQUENCY_BINS]
    return build_mrc_sram_for_bins(timing_sets)


class TestTraining:
    def test_training_produces_cycle_counts(self):
        timings = timings_for_frequency(1.6e9, "lpddr3")
        configuration = train_mrc(timings)
        assert configuration.trained_frequency == pytest.approx(1.6e9)
        assert configuration.tcl_cycles == round(timings.tcl / timings.clock_period)

    def test_different_bins_produce_different_cycle_counts(self):
        high = train_mrc(timings_for_frequency(1.6e9, "lpddr3"))
        low = train_mrc(timings_for_frequency(0.8e9, "lpddr3"))
        assert high.tcl_cycles != low.tcl_cycles

    def test_matches_tolerates_small_error(self):
        configuration = train_mrc(timings_for_frequency(1.6e9, "lpddr3"))
        assert configuration.matches(1.6e9 + 10.0)
        assert not configuration.matches(1.06e9)


class TestSram:
    def test_all_bins_fit_in_half_kilobyte(self, sram_and_sets):
        sram, _ = sram_and_sets
        assert sram.used_bytes <= config.MRC_SRAM_BYTES
        assert len(sram.stored_frequencies) == 3

    def test_load_returns_matching_set(self, sram_and_sets):
        sram, trained = sram_and_sets
        loaded = sram.load(1.06e9)
        assert loaded is trained[1.06e9]

    def test_load_unknown_frequency_raises(self, sram_and_sets):
        sram, _ = sram_and_sets
        with pytest.raises(KeyError):
            sram.load(2.4e9)

    def test_capacity_enforced(self):
        sram = MrcSram(capacity_bytes=100)
        with pytest.raises(MrcTrainingError):
            sram.store(train_mrc(timings_for_frequency(1.6e9, "lpddr3")))
            sram.store(train_mrc(timings_for_frequency(1.06e9, "lpddr3")))

    def test_restoring_same_frequency_does_not_double_count(self):
        sram = MrcSram()
        configuration = train_mrc(timings_for_frequency(1.6e9, "lpddr3"))
        sram.store(configuration)
        sram.store(configuration)
        assert sram.used_bytes == configuration.register_bytes

    def test_load_latency_within_budget(self, sram_and_sets):
        sram, _ = sram_and_sets
        assert sram.load_latency() <= config.TRANSITION_MRC_LOAD_LATENCY


class TestRegisterFile:
    def test_optimized_has_no_penalty(self, sram_and_sets):
        _, trained = sram_and_sets
        registers = MrcRegisterFile(loaded=trained[1.06e9])
        assert registers.is_optimized_for(1.06e9)
        assert registers.effective_bandwidth_derate(1.06e9) == pytest.approx(1.0)
        assert registers.access_latency_factor(1.06e9) == pytest.approx(1.0)
        assert registers.interface_power_factor(1.06e9) == pytest.approx(1.0)

    def test_mismatch_applies_fig4_penalties(self, sram_and_sets):
        _, trained = sram_and_sets
        registers = MrcRegisterFile(loaded=trained[1.6e9])
        assert not registers.is_optimized_for(1.06e9)
        assert registers.effective_bandwidth_derate(1.06e9) == pytest.approx(
            1.0 - config.UNOPTIMIZED_MRC_PERFORMANCE_PENALTY
        )
        assert registers.access_latency_factor(1.06e9) > 1.0
        assert registers.interface_power_factor(1.06e9) == pytest.approx(
            1.0 + config.UNOPTIMIZED_MRC_POWER_PENALTY
        )

    def test_reload_switches_optimization_target(self, sram_and_sets):
        sram, trained = sram_and_sets
        registers = MrcRegisterFile(loaded=trained[1.6e9])
        registers.load(sram.load(1.06e9))
        assert registers.is_optimized_for(1.06e9)
        assert not registers.is_optimized_for(1.6e9)

    def test_invalid_penalties_rejected(self, sram_and_sets):
        _, trained = sram_and_sets
        with pytest.raises(MrcTrainingError):
            MrcRegisterFile(loaded=trained[1.6e9], bandwidth_penalty=1.5)

    def test_empty_bin_list_rejected(self):
        with pytest.raises(MrcTrainingError):
            build_mrc_sram_for_bins([])
