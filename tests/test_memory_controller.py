"""Tests for the memory controller and latency models."""

import pytest

from repro import config
from repro.memory.controller import MemoryControllerModel
from repro.memory.dram import lpddr3_device
from repro.memory.mrc import MrcRegisterFile, train_mrc
from repro.memory.timings import timings_for_frequency
from repro.perf.latency import MemoryLatencyModel
from repro.soc.domains import SoCState


@pytest.fixture
def controller():
    return MemoryControllerModel(device=lpddr3_device())


@pytest.fixture
def latency_model(controller):
    return MemoryLatencyModel(controller=controller)


class TestBandwidth:
    def test_achievable_below_peak(self, controller):
        assert controller.achievable_bandwidth(1.6e9) < controller.peak_bandwidth(1.6e9)

    def test_achievable_scales_with_frequency(self, controller):
        assert controller.achievable_bandwidth(1.06e9) < controller.achievable_bandwidth(1.6e9)

    def test_mrc_derate_reduces_ceiling(self, controller):
        stale = MrcRegisterFile(loaded=train_mrc(timings_for_frequency(1.6e9, "lpddr3")))
        optimized = controller.achievable_bandwidth(1.06e9, None)
        derated = controller.achievable_bandwidth(1.06e9, stale)
        assert derated < optimized

    def test_utilization_clamped(self, controller):
        assert controller.utilization(1e12, 1.6e9) == 1.0
        assert controller.utilization(0.0, 1.6e9) == 0.0

    def test_negative_demand_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.utilization(-1.0)


class TestLatency:
    def test_unloaded_latency_increases_at_low_point(self, controller):
        high = controller.unloaded_latency(1.6e9, config.IO_INTERCONNECT_HIGH_FREQUENCY)
        low = controller.unloaded_latency(1.06e9, config.IO_INTERCONNECT_LOW_FREQUENCY)
        assert low > high

    def test_latency_increase_is_moderate(self, controller):
        """The effective low/high latency ratio is well under the raw clock ratios."""
        high = controller.unloaded_latency(1.6e9, config.IO_INTERCONNECT_HIGH_FREQUENCY)
        low = controller.unloaded_latency(1.06e9, config.IO_INTERCONNECT_LOW_FREQUENCY)
        assert 1.0 < low / high < 1.35

    def test_loaded_latency_grows_with_demand(self, controller):
        light = controller.loaded_latency(1e9, 1.6e9)
        heavy = controller.loaded_latency(20e9, 1.6e9)
        assert heavy > light

    def test_loaded_latency_bounded(self, controller):
        extreme = controller.loaded_latency(1e12, 1.6e9)
        assert extreme <= controller.unloaded_latency(1.6e9) * 8.0 + 1e-9

    def test_stale_mrc_increases_latency(self, controller):
        stale = MrcRegisterFile(loaded=train_mrc(timings_for_frequency(1.6e9, "lpddr3")))
        assert controller.unloaded_latency(1.06e9, mrc=stale) > controller.unloaded_latency(1.06e9)

    def test_invalid_interconnect_frequency(self, controller):
        with pytest.raises(ValueError):
            controller.unloaded_latency(1.6e9, interconnect_frequency=0.0)


class TestLatencyModel:
    def test_reference_matches_high_point_state(self, latency_model):
        state = SoCState()
        demand = 4e9
        assert latency_model.latency(state, demand) == pytest.approx(
            latency_model.reference_latency(demand)
        )

    def test_ratio_above_one_at_low_point(self, latency_model):
        low = SoCState(
            dram_frequency=1.06e9,
            interconnect_frequency=0.4e9,
            v_sa_scale=0.8,
            v_io_scale=0.85,
        )
        assert latency_model.latency_ratio(low, 4e9) > 1.0

    def test_available_bandwidth_tracks_state(self, latency_model):
        low = SoCState(dram_frequency=1.06e9, interconnect_frequency=0.4e9)
        assert latency_model.available_bandwidth(low) < latency_model.reference_bandwidth()

    def test_invalid_construction(self, controller):
        with pytest.raises(ValueError):
            MemoryLatencyModel(controller=controller, reference_dram_frequency=0.0)
