"""Integration tests: the experiment harness reproduces the paper's key shapes.

These tests run the actual experiment functions (on reduced workload subsets or
corpus sizes where the full sweep would be slow) and assert the qualitative
results the paper reports: who wins, in which direction, and by roughly what
factor.  Exact absolute numbers are not asserted -- the substrate is a simulator,
not the authors' instrumented silicon (see DESIGN.md).
"""

import pytest

from repro.experiments import (
    build_context,
    format_table,
    run_dram_frequency_sensitivity,
    run_fig2_motivation,
    run_fig3_bandwidth_demand,
    run_fig4_mrc_impact,
    run_fig5_transition_flow,
    run_fig7_spec,
    run_fig8_graphics,
    run_fig9_battery_life,
    run_table1,
    run_table2,
)


@pytest.fixture(scope="module")
def context():
    return build_context(workload_duration=0.5)


class TestTables:
    def test_table1_settings(self, context):
        rows = run_table1(context)["rows"]
        by_component = {row["component"]: row for row in rows}
        assert by_component["DRAM frequency (GHz)"]["md_dvfs"] == pytest.approx(1.06)
        assert by_component["IO Interconnect (GHz)"]["md_dvfs"] == pytest.approx(0.4) \
            if "IO Interconnect (GHz)" in by_component else True
        assert by_component["Shared voltage (x V_SA)"]["md_dvfs"] == pytest.approx(0.8)
        assert by_component["DDRIO digital (x V_IO)"]["md_dvfs"] == pytest.approx(0.85)

    def test_table2_parameters(self, context):
        rows = {row["parameter"]: row["value"] for row in run_table2(context)["rows"]}
        assert rows["Thermal design power (W)"] == pytest.approx(4.5)
        assert rows["Peak memory bandwidth (GB/s)"] == pytest.approx(25.6)

    def test_format_table_renders(self, context):
        text = format_table(run_table1(context)["rows"])
        assert "DRAM frequency" in text


class TestMotivation:
    def test_fig2_power_reduces_for_all_three(self, context):
        impact = run_fig2_motivation(context)["impact"]
        assert len(impact) == 3
        for row in impact:
            assert 0.05 < row["power_reduction"] < 0.25

    def test_fig2_memory_bound_workloads_lose_performance(self, context):
        impact = {row["workload"]: row for row in run_fig2_motivation(context)["impact"]}
        assert impact["436.cactusADM"]["performance_change"] < -0.05
        assert impact["470.lbm"]["performance_change"] < -0.08
        assert impact["400.perlbench"]["performance_change"] > -0.03

    def test_fig2_redistribution_helps_compute_bound_only(self, context):
        impact = {row["workload"]: row for row in run_fig2_motivation(context)["impact"]}
        assert impact["400.perlbench"]["performance_with_redistribution"] > 0.03
        assert impact["470.lbm"]["performance_with_redistribution"] < 0.02

    def test_fig3_display_demands(self, context):
        rows = {row["configuration"]: row for row in run_fig3_bandwidth_demand(context)["component_demand"]}
        assert rows["single_hd"]["fraction_of_peak"] == pytest.approx(0.17, abs=0.02)
        assert rows["single_4k"]["fraction_of_peak"] == pytest.approx(0.70, abs=0.03)
        assert rows["triple_hd"]["fraction_of_peak"] == pytest.approx(0.51, abs=0.03)

    def test_fig3_timelines_vary_over_time(self, context):
        timelines = run_fig3_bandwidth_demand(context)["timelines"]
        astar = [point["bandwidth_gbps"] for point in timelines["473.astar"]]
        assert max(astar) > 2 * min(astar)

    def test_fig4_mrc_penalties(self, context):
        result = run_fig4_mrc_impact(context)
        assert 0.05 < result["performance_degradation"] < 0.20
        assert result["memory_power_increase"] > 0.05
        assert result["unoptimized_bandwidth_gbps"] < result["optimized_bandwidth_gbps"]


class TestMechanism:
    def test_fig5_flow_within_budget(self, context):
        result = run_fig5_transition_flow(context)
        assert result["within_budget"]
        assert result["worst_latency_us"] <= result["budget_us"]


class TestEvaluation:
    def test_fig7_ordering_and_magnitude(self, context):
        subset = (
            "400.perlbench", "416.gamess", "433.milc", "436.cactusADM",
            "444.namd", "470.lbm", "473.astar", "482.sphinx3",
        )
        result = run_fig7_spec(context, subset=subset)
        average = result["average"]
        assert average["sysscale"] > average["coscale_redist"] > average["memscale_redist"]
        assert 0.03 < average["sysscale"] < 0.15
        assert result["max"]["sysscale"] > 0.10

    def test_fig7_memory_bound_workloads_do_not_regress(self, context):
        result = run_fig7_spec(context, subset=("433.milc", "470.lbm"))
        for row in result["rows"]:
            assert row["sysscale"] >= -0.01

    def test_fig8_graphics_ordering(self, context):
        result = run_fig8_graphics(context)
        rows = {row["workload"]: row for row in result["rows"]}
        for row in result["rows"]:
            assert row["sysscale"] > row["memscale_redist"]
            assert row["sysscale"] > 0.02
        # 3DMark11 is the most bandwidth-hungry variant and benefits least.
        assert rows["3DMark11"]["sysscale"] <= rows["3DMark06"]["sysscale"]

    def test_fig9_battery_life_savings(self, context):
        result = run_fig9_battery_life(context)
        rows = {row["workload"]: row for row in result["rows"]}
        for row in result["rows"]:
            assert 0.03 < row["sysscale"] < 0.20
            assert row["sysscale"] > row["memscale_redist"]
        assert rows["video_playback"]["sysscale"] > rows["web_browsing"]["sysscale"]

    def test_sensitivity_ddr4_saves_less(self, context):
        result = run_dram_frequency_sensitivity(context, corpus_size=20)
        assert result["ddr4_power_savings_w"] < result["lpddr3_power_savings_w"]
        assert result["degradation_ratio_0p8_vs_1p06"] > 1.5
        # The extra power freed by the 0.8 GHz bin is a small fraction of what the
        # 1.06 GHz point already frees (V_SA is at Vmin), confirming the paper's
        # decision to implement only two operating points.
        assert result["extra_savings_from_0p8_bin_w"] < 0.5 * result["lpddr3_power_savings_w"]
