"""Determinism regression tests.

The runtime's correctness rests on one property: a simulation's result depends
only on its job spec, never on what ran before it, which process ran it, or
whether it came from the cache.  These tests pin that property at every layer:
back-to-back engine runs on one platform, cold versus warm cache, and serial
versus process-parallel execution.
"""

import pytest

from repro.baselines.fixed import FixedBaselinePolicy
from repro.core.sysscale import SysScaleController
from repro.experiments import build_context, run_fig7_spec
from repro.experiments.runner import ExperimentRuntime
from repro.runtime import (
    ParallelExecutor,
    PolicySpec,
    ResultCache,
    SerialExecutor,
    SimSpec,
    SimulationJob,
    TraceSpec,
)
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.platform import build_platform
from repro.workloads.spec2006 import spec_workload

SUBSET = ("470.lbm", "416.gamess")


class TestEngineDeterminism:
    def test_back_to_back_runs_identical(self, platform):
        """Two consecutive runs on the same platform yield identical results,
        even though the first run's transition flow mutated live platform
        state (DRAM frequency, rail voltages, interconnect clock, MRC)."""
        engine = SimulationEngine(platform, SimulationConfig(max_simulated_time=0.2))
        trace = spec_workload("470.lbm", duration=0.2)
        first = engine.run(trace, SysScaleController(platform=platform))
        second = engine.run(trace, SysScaleController(platform=platform))
        assert first.to_dict() == second.to_dict()

    def test_result_independent_of_preceding_runs(self):
        """A run's numbers do not change because a different workload/policy
        ran on the platform first (run-order independence)."""
        sim = SimulationConfig(max_simulated_time=0.2)
        trace = spec_workload("470.lbm", duration=0.2)

        fresh_platform = build_platform()
        fresh = SimulationEngine(fresh_platform, sim).run(
            trace, SysScaleController(platform=fresh_platform)
        )

        used_platform = build_platform()
        used_engine = SimulationEngine(used_platform, sim)
        used_engine.run(
            spec_workload("433.milc", duration=0.2),
            SysScaleController(platform=used_platform),
        )
        used_engine.run(trace, FixedBaselinePolicy())
        after_use = used_engine.run(trace, SysScaleController(platform=used_platform))

        assert after_use.to_dict() == fresh.to_dict()


class TestRuntimeDeterminism:
    def _context(self, cache=None, executor=None):
        runtime = ExperimentRuntime(
            executor=executor or SerialExecutor(), cache=cache
        )
        return build_context(
            workload_duration=0.1,
            sim_config=SimulationConfig(max_simulated_time=0.1),
            runtime=runtime,
        )

    def test_cold_vs_warm_cache_identical_numbers(self, tmp_path):
        """One figure, cold cache then warm cache: identical numbers, and the
        warm run performs zero new simulations."""
        cache_dir = tmp_path / "cache"
        cold_context = self._context(cache=ResultCache(cache_dir))
        cold = run_fig7_spec(cold_context, subset=SUBSET)
        assert cold_context.runtime.executed > 0
        assert cold_context.runtime.cache_hits == 0

        warm_context = self._context(cache=ResultCache(cache_dir))
        warm = run_fig7_spec(warm_context, subset=SUBSET)
        assert warm_context.runtime.executed == 0
        assert warm_context.runtime.cache_hits == warm_context.runtime.unique

        assert warm["rows"] == cold["rows"]
        assert warm["average"] == cold["average"]

    def test_parallel_equals_serial_for_campaign(self):
        """ParallelExecutor results are bit-identical to SerialExecutor results
        for the same job batch."""
        jobs = [
            SimulationJob(
                trace=TraceSpec.make("spec", name=name, duration=0.05),
                policy=PolicySpec.make(policy),
                sim=SimSpec(max_simulated_time=0.05),
            )
            for name in SUBSET
            for policy in ("baseline", "sysscale")
        ]
        serial = SerialExecutor().run(jobs)
        parallel = ParallelExecutor(max_workers=2).run(jobs)
        assert parallel.payloads() == serial.payloads()

    def test_runtime_path_matches_direct_engine(self):
        """The figure code's runtime submission produces the same numbers as
        driving the engine directly with equivalent objects."""
        context = self._context()
        figure = run_fig7_spec(context, subset=("470.lbm",))

        platform = build_platform()
        engine = SimulationEngine(platform, SimulationConfig(max_simulated_time=0.1))
        trace = spec_workload("470.lbm", duration=0.1)
        baseline = engine.run(trace, FixedBaselinePolicy())
        sysscale = engine.run(trace, SysScaleController(platform=platform))
        expected = sysscale.performance_improvement_over(baseline)
        assert figure["rows"][0]["sysscale"] == pytest.approx(expected, abs=0.0)
