"""Fast-loop vs. reference-loop bit-identity (the segment-stepping arbiter).

The segment-stepping engine must reproduce the seed per-tick loop *bit for
bit*: energy breakdown, counters-driven policy decisions, transition counts,
low-point time, every serialized field.  The strategy that makes this possible
is replay (the tight loop performs the identical sequence of per-tick float
additions on identical increments), and these tests are the arbiter the
engine's docstring points at: every scenario-catalog entry under every policy,
plus registry hardware variants, plus the classic workload families.
"""

import pytest

from repro.baselines.fixed import FixedBaselinePolicy
from repro.baselines.md_dvfs import StaticMdDvfsPolicy
from repro.hw import get_hardware
from repro.runtime.jobs import _build_sysscale
from repro.scenarios.registry import SCENARIOS
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.platform import build_platform
from repro.workloads.batterylife import battery_life_workload
from repro.workloads.spec2006 import spec_workload

POLICIES = ("baseline", "sysscale", "md_dvfs")

#: Cap on simulated time per parity run: long enough to cross many phase
#: boundaries, evaluation intervals, and DVFS transitions, short enough that
#: the reference loop's per-tick model evaluations stay affordable in CI.
PARITY_MAX_TIME = 0.35

#: Registry variants for the hardware axis (a Broadwell delta and the DDR4
#: device, which exercises the other operating-point table and MRC sets).
HW_VARIANTS = ("broadwell", "skylake-ddr4")

#: Catalog subset for the hardware-variant axis (one per generator family
#: keeps the reference-loop budget bounded; the full catalog runs on Skylake).
HW_SCENARIO_SUBSET = (
    "bursty-heavy",
    "markov-mobile-day",
    "interleaved-thrash",
)


def _policy(name, platform):
    if name == "baseline":
        return FixedBaselinePolicy()
    if name == "md_dvfs":
        return StaticMdDvfsPolicy()
    return _build_sysscale(platform)


def _engines(platform, **overrides):
    fast = SimulationEngine(
        platform,
        SimulationConfig(max_simulated_time=PARITY_MAX_TIME, **overrides),
    )
    reference = SimulationEngine(
        platform,
        SimulationConfig(
            max_simulated_time=PARITY_MAX_TIME, reference_loop=True, **overrides
        ),
    )
    return fast, reference


def _assert_parity(fast_engine, reference_engine, trace, platform, policy_name):
    fast = fast_engine.run(trace, _policy(policy_name, platform))
    fast_stats = fast_engine.last_run_stats
    reference = reference_engine.run(trace, _policy(policy_name, platform))
    reference_stats = reference_engine.last_run_stats
    assert fast.to_dict() == reference.to_dict(), (
        f"fast/reference mismatch for {trace.name} under {policy_name}"
    )
    # The segment loop must walk the same trajectory, not just land on the
    # same numbers: same ticks, same policy evaluations, same transitions.
    assert fast_stats.ticks == reference_stats.ticks
    assert fast_stats.evaluations == reference_stats.evaluations
    assert fast_stats.transitions == reference_stats.transitions
    return fast_stats


@pytest.fixture(scope="module")
def scenario_traces():
    """Every catalog trace, synthesized once."""
    return {name: SCENARIOS[name].build() for name in sorted(SCENARIOS)}


class TestScenarioCatalogParity:
    """Acceptance: bit-identity across the full catalog x every policy."""

    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_full_catalog_bit_identical(self, platform, scenario_traces, policy_name):
        fast_engine, reference_engine = _engines(platform)
        for name, trace in scenario_traces.items():
            _assert_parity(fast_engine, reference_engine, trace, platform, policy_name)


class TestHardwareVariantParity:
    @pytest.mark.parametrize("variant", HW_VARIANTS)
    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_registry_variant_bit_identical(
        self, scenario_traces, variant, policy_name
    ):
        hw_platform = get_hardware(variant).build()
        fast_engine, reference_engine = _engines(hw_platform)
        for name in HW_SCENARIO_SUBSET:
            _assert_parity(
                fast_engine,
                reference_engine,
                scenario_traces[name],
                hw_platform,
                policy_name,
            )


class TestWorkloadFamilyParity:
    """The classic (non-catalog) families: SPEC phases and battery-life
    residency accounting, including the record_bandwidth_samples path."""

    @pytest.mark.parametrize("policy_name", POLICIES)
    @pytest.mark.parametrize("workload", ("470.lbm", "416.gamess", "429.mcf"))
    def test_spec_workloads(self, platform, policy_name, workload):
        trace = spec_workload(workload, duration=0.3)
        fast_engine, reference_engine = _engines(
            platform, record_bandwidth_samples=True
        )
        _assert_parity(fast_engine, reference_engine, trace, platform, policy_name)

    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_battery_life(self, platform, policy_name):
        trace = battery_life_workload("video_playback", cycles=1)
        fast_engine, reference_engine = _engines(platform)
        _assert_parity(fast_engine, reference_engine, trace, platform, policy_name)


class TestSegmentStepping:
    """Regression guards on the segment loop itself."""

    def test_model_evaluations_are_amortized(self, platform):
        """The whole point: far fewer model evaluations than ticks."""
        trace = battery_life_workload("video_playback", cycles=1)
        engine = SimulationEngine(platform, SimulationConfig(max_simulated_time=1.0))
        engine.run(trace, FixedBaselinePolicy())
        stats = engine.last_run_stats
        assert stats.ticks >= 900
        assert stats.model_evaluations <= stats.ticks // 20
        assert stats.ticks_per_evaluation > 20

    def test_recurring_phases_hit_the_memo(self, platform):
        """Markov walks revisit phases; recurring segments must skip the
        model stack entirely."""
        trace = SCENARIOS["markov-mobile-day"].build()
        engine = SimulationEngine(platform, SimulationConfig(max_simulated_time=1.0))
        engine.run(trace, _build_sysscale(platform))
        stats = engine.last_run_stats
        assert stats.memo_hits > 0
        assert stats.model_evaluations < stats.segments

    def test_reference_loop_counts_every_tick(self, platform):
        trace = spec_workload("416.gamess", duration=0.1)
        engine = SimulationEngine(
            platform,
            SimulationConfig(max_simulated_time=0.1, reference_loop=True),
        )
        engine.run(trace, FixedBaselinePolicy())
        stats = engine.last_run_stats
        assert stats.model_evaluations == stats.ticks
        assert stats.memo_hits == 0

    def test_policy_sees_sample_counts(self, platform):
        """Segment-aware observation plumbing: the policy learns how many 1 ms
        samples each averaged observation covers (30 per 30 ms interval)."""
        observed = []

        class Probe(FixedBaselinePolicy):
            def decide(self, observation):
                observed.append(observation.samples)
                return super().decide(observation)

        trace = spec_workload("416.gamess", duration=0.2)
        engine = SimulationEngine(platform, SimulationConfig(max_simulated_time=0.2))
        engine.run(trace, Probe())
        assert observed
        assert all(count == 30 for count in observed)

    def test_fast_loop_is_materially_faster(self, platform):
        """A very lenient wall-clock sanity floor (the bench harness measures
        the real speedup; this only catches a fully broken fast path)."""
        import time

        trace = battery_life_workload("video_playback", cycles=1)
        fast_engine, reference_engine = _engines(platform)
        fast_engine.run(trace, FixedBaselinePolicy())  # warm shared caches
        started = time.perf_counter()
        fast_engine.run(trace, FixedBaselinePolicy())
        fast_seconds = time.perf_counter() - started
        started = time.perf_counter()
        reference_engine.run(trace, FixedBaselinePolicy())
        reference_seconds = time.perf_counter() - started
        assert fast_seconds < reference_seconds
