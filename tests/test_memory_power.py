"""Tests for the memory/IO domain power model."""

import pytest

from repro import config
from repro.memory.ddrio import DdrioModel
from repro.memory.dram import lpddr3_device
from repro.memory.mrc import MrcRegisterFile, train_mrc
from repro.memory.power import MemoryPowerModel
from repro.memory.timings import timings_for_frequency


@pytest.fixture
def model():
    return MemoryPowerModel(device=lpddr3_device(), ddrio=DdrioModel())


class TestDdrio:
    def test_digital_power_scales_with_v_squared_f(self):
        ddrio = DdrioModel()
        base = ddrio.digital_power(1.6e9, 1.0)
        assert ddrio.digital_power(1.06e9, 1.0) == pytest.approx(base * 1.06 / 1.6)
        assert ddrio.digital_power(1.6e9, 0.85) == pytest.approx(base * 0.85 ** 2)

    def test_termination_power_tracks_utilization_not_frequency(self):
        ddrio = DdrioModel()
        assert ddrio.termination_power(0.0) == 0.0
        assert ddrio.termination_power(1.0) == pytest.approx(ddrio.termination_power_peak)

    def test_self_refresh_power_is_small(self):
        ddrio = DdrioModel()
        active = ddrio.total_power(1.6e9, 0.5, 1.0)
        asleep = ddrio.total_power(1.6e9, 0.5, 1.0, in_self_refresh=True)
        assert asleep < 0.2 * active

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            DdrioModel().termination_power(1.5)


class TestComponents:
    def test_background_power_decreases_with_frequency(self, model):
        assert model.dram_background_power(1.06e9, False) < model.dram_background_power(1.6e9, False)

    def test_background_zero_in_self_refresh(self, model):
        assert model.dram_background_power(1.6e9, True) == 0.0

    def test_mc_power_cubic_style_scaling(self, model):
        high = model.memory_controller_power(1.6e9, 1.0)
        low = model.memory_controller_power(1.06e9, 0.8)
        assert low == pytest.approx(high * (1.06 / 1.6) * 0.64)

    def test_operation_power_proportional_to_bandwidth(self, model):
        assert model.dram_operation_power(10e9, 1.6e9) == pytest.approx(
            2 * model.dram_operation_power(5e9, 1.6e9)
        )

    def test_operation_energy_rises_at_low_frequency(self, model):
        per_byte_high = model.dram_operation_power(1e9, 1.6e9)
        per_byte_low = model.dram_operation_power(1e9, 1.06e9)
        assert per_byte_low > per_byte_high

    def test_interconnect_power_scales(self, model):
        high = model.interconnect_power(0.8e9, 1.0)
        low = model.interconnect_power(0.4e9, 0.8)
        assert low == pytest.approx(high * 0.5 * 0.64)

    def test_io_engines_floor(self, model):
        idle = model.io_engines_power(1.0, io_activity=0.0)
        busy = model.io_engines_power(1.0, io_activity=1.0)
        assert 0 < idle < busy


class TestBreakdown:
    def test_low_point_reduces_io_memory_power(self, model):
        high = model.breakdown(1.6e9, 0.8e9, 1.0, 1.0, bandwidth=5e9)
        low = model.breakdown(1.06e9, 0.4e9, 0.8, 0.85, bandwidth=5e9)
        assert low.total < high.total
        assert low.memory_domain < high.memory_domain
        assert low.io_domain < high.io_domain

    def test_self_refresh_breakdown_is_minimal(self, model):
        asleep = model.breakdown(1.6e9, 0.8e9, 1.0, 1.0, bandwidth=0.0, in_self_refresh=True)
        assert asleep.dram_background == 0.0
        assert asleep.dram_operation == 0.0
        assert asleep.self_refresh == pytest.approx(model.self_refresh_power)

    def test_stale_mrc_increases_power(self, model):
        stale = MrcRegisterFile(loaded=train_mrc(timings_for_frequency(1.6e9, "lpddr3")))
        optimized = model.breakdown(1.06e9, 0.4e9, 0.8, 0.85, bandwidth=10e9, mrc=None)
        unoptimized = model.breakdown(1.06e9, 0.4e9, 0.8, 0.85, bandwidth=10e9, mrc=stale)
        assert unoptimized.total > optimized.total

    def test_breakdown_total_is_sum_of_domains(self, model):
        breakdown = model.breakdown(1.6e9, 0.8e9, 1.0, 1.0, bandwidth=5e9)
        assert breakdown.total == pytest.approx(breakdown.memory_domain + breakdown.io_domain)

    def test_as_dict_has_totals(self, model):
        data = model.breakdown(1.6e9, 0.8e9, 1.0, 1.0, bandwidth=5e9).as_dict()
        assert "total" in data and "memory_domain" in data and "io_domain" in data

    def test_invalid_scale_rejected(self, model):
        with pytest.raises(ValueError):
            model.memory_controller_power(1.6e9, 0.0)

    def test_negative_bandwidth_rejected(self, model):
        with pytest.raises(ValueError):
            model.dram_operation_power(-1.0, 1.6e9)
