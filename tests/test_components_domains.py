"""Tests for SoC components, domains, and the SoC state object."""

import pytest

from repro import config
from repro.soc.components import Component, CpuCluster, MemoryControllerComponent
from repro.soc.domains import Domain, DomainKind, SoCState
from repro.soc.skylake import build_skylake_soc
from repro.soc.broadwell import build_broadwell_soc
from repro.soc.vr import RailName


class TestComponentPower:
    def test_dynamic_power_scales_with_v_squared_f(self):
        component = Component(name="x", rail=RailName.V_SA, ceff=1e-9, leakage_coeff=0.1)
        base = component.dynamic_power(0.7, 1e9)
        assert component.dynamic_power(1.4, 1e9) == pytest.approx(4 * base)
        assert component.dynamic_power(0.7, 2e9) == pytest.approx(2 * base)

    def test_activity_clamped(self):
        component = Component(name="x", rail=RailName.V_SA, ceff=1e-9)
        assert component.dynamic_power(0.7, 1e9, activity=2.0) == pytest.approx(
            component.dynamic_power(0.7, 1e9, activity=1.0)
        )

    def test_leakage_scales_with_v_squared(self):
        component = Component(name="x", rail=RailName.V_SA, leakage_coeff=0.2)
        assert component.leakage_power(1.0) == pytest.approx(0.2)
        assert component.leakage_power(0.5) == pytest.approx(0.05)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            Component(name="x", rail=RailName.V_SA, ceff=-1e-9)

    def test_cluster_power_idle_cores_only_leak(self):
        cpu = CpuCluster(
            name="cpu", rail=RailName.V_CORE, ceff=1e-9, leakage_coeff=0.1, core_count=2
        )
        one_core = cpu.cluster_power(0.7, 1e9, active_cores=1)
        two_cores = cpu.cluster_power(0.7, 1e9, active_cores=2)
        assert two_cores > one_core
        assert two_cores - one_core == pytest.approx(cpu.dynamic_power(0.7, 1e9))

    def test_mc_frequency_follows_ddr(self):
        mc = MemoryControllerComponent(name="mc", rail=RailName.V_SA)
        assert mc.frequency_for_ddr(1.6e9) == pytest.approx(0.8e9)


class TestDomains:
    def test_skylake_has_three_domains(self):
        soc = build_skylake_soc()
        assert set(soc.domains) == {DomainKind.COMPUTE, DomainKind.IO, DomainKind.MEMORY}

    def test_compute_domain_members(self):
        soc = build_skylake_soc()
        names = soc.domain(DomainKind.COMPUTE).names()
        assert "cpu_cluster" in names and "graphics_engine" in names

    def test_memory_domain_members(self):
        soc = build_skylake_soc()
        names = soc.domain(DomainKind.MEMORY).names()
        assert "memory_controller" in names and "ddrio" in names

    def test_duplicate_component_rejected(self):
        domain = Domain(kind=DomainKind.IO)
        component = Component(name="disp", rail=RailName.V_SA)
        domain.add(component)
        with pytest.raises(ValueError):
            domain.add(Component(name="disp", rail=RailName.V_SA))

    def test_component_lookup(self):
        soc = build_skylake_soc()
        assert soc.domain(DomainKind.IO).component("io_interconnect") is soc.io_interconnect
        with pytest.raises(KeyError):
            soc.domain(DomainKind.IO).component("nonexistent")


class TestSoCState:
    def test_default_state_is_high_point(self):
        soc = build_skylake_soc()
        state = soc.default_state()
        assert state.dram_frequency == pytest.approx(1.6e9)
        assert state.interconnect_frequency == pytest.approx(0.8e9)
        assert state.v_sa_scale == 1.0 and state.v_io_scale == 1.0
        assert state.mrc_optimized

    def test_mc_frequency_is_half_dram(self):
        state = SoCState()
        assert state.mc_frequency == pytest.approx(state.dram_frequency / 2)

    def test_with_updates_is_functional(self):
        state = SoCState()
        low = state.with_updates(dram_frequency=1.06e9, v_sa_scale=0.8)
        assert low.dram_frequency == pytest.approx(1.06e9)
        assert state.dram_frequency == pytest.approx(1.6e9)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            SoCState(cpu_frequency=-1)
        with pytest.raises(ValueError):
            SoCState(v_sa_scale=0.0)

    def test_describe_round_trips_key_fields(self):
        state = SoCState()
        described = state.describe()
        assert described["dram_frequency_ghz"] == pytest.approx(1.6)
        assert described["cpu_frequency_ghz"] == pytest.approx(1.2)


class TestSoCDescriptions:
    def test_skylake_describe_matches_table2(self):
        soc = build_skylake_soc()
        summary = soc.describe()
        assert summary["tdp_w"] == pytest.approx(4.5)
        assert summary["cpu_cores"] == 2
        assert summary["llc_mib"] == pytest.approx(4.0)
        assert summary["dram"]["peak_bandwidth_gbps"] == pytest.approx(25.6)

    def test_skylake_with_tdp(self):
        soc = build_skylake_soc().with_tdp(3.5)
        assert soc.tdp == pytest.approx(3.5)

    def test_broadwell_differs_in_name_only_structurally(self):
        broadwell = build_broadwell_soc()
        assert "Broadwell" in broadwell.name
        assert broadwell.cpu.core_count == config.SKYLAKE_CORE_COUNT

    def test_invalid_tdp_rejected(self):
        with pytest.raises(ValueError):
            build_skylake_soc(tdp=-1)
