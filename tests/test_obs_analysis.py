"""The repro.obs.analysis read side: trace models, attribution diffs, Chrome
export, the metrics time-series sampler, and the bench-history regression
gate -- including the guarantee that sampling is inert with respect to
results (bit-identical payloads with the sampler on or off)."""

import json

import pytest

from repro import obs
from repro.obs import MemorySink
from repro.obs import state as obs_state
from repro.obs.analysis import (
    MetricsSampler,
    TraceModel,
    attribution,
    chrome_trace_events,
    compare_documents,
    derive_budget,
    diff_traces,
    export_chrome_trace,
    load_bench_document,
    relative_spread,
    render_comparison_text,
    render_diff_text,
    summarize_timeseries,
)
from repro.runtime.cache import ResultCache
from repro.runtime.cli import main
from repro.runtime.executor import ParallelExecutor, SerialExecutor
from repro.runtime.jobs import (
    PlatformSpec,
    PolicySpec,
    SimSpec,
    SimulationJob,
    TraceSpec,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends in the disabled default scope."""
    obs.reset()
    yield
    obs.reset()


def _tiny_job(name="470.lbm", policy="baseline", max_time=0.05):
    return SimulationJob(
        trace=TraceSpec.make("spec", name=name, duration=0.05),
        policy=PolicySpec.make(policy),
        platform=PlatformSpec(tdp=4.5),
        sim=SimSpec(max_simulated_time=max_time),
    )


# ----------------------------------------------------------------------
# Handcrafted trace fixtures (golden inputs for model/diff/export tests)
# ----------------------------------------------------------------------
def _segment(t, duration, phase, dram=1.6e9, memo_hit=False, ticks=10, **extra):
    event = {
        "type": "engine.segment",
        "t": t,
        "duration_s": duration,
        "ticks": ticks,
        "phase": phase,
        "memo_hit": memo_hit,
        "dram_frequency": dram,
        "interconnect_frequency": 0.8e9,
        "cpu_frequency": 2.6e9,
        "gfx_frequency": 0.3e9,
        "v_sa_scale": 1.0,
        "v_io_scale": 1.0,
        "mrc_optimized": False,
        "low_point": False,
        "bandwidth": 2e9,
        "compute_power": 1.0,
        "io_power": 0.5,
        "memory_power": 0.25,
        "platform_power": 0.25,
    }
    event.update(extra)
    return event


def _run_summary(workload, policy, **extra):
    event = {"type": "engine.run", "workload": workload, "policy": policy}
    event.update(extra)
    return event


def _span(name, depth, duration):
    return {"type": "span", "name": name, "depth": depth, "duration_s": duration}


def _fixture_events(job_hash="h1", workload="w", policy="sysscale"):
    stamp = {"job_hash": job_hash}
    return [
        _segment(0.0, 0.5, "compute", **stamp),
        _segment(0.5, 0.25, "memory", dram=1.067e9, memo_hit=True, **stamp),
        {
            "type": "engine.transition",
            "t": 0.5,
            "latency_s": 0.001,
            "from_dram_frequency": 1.6e9,
            "to_dram_frequency": 1.067e9,
            **stamp,
        },
        _run_summary(workload, policy, **stamp),
        # Span exits arrive in post-order: child first, then its parent.
        _span("engine.run", 1, 0.2),
        _span("cli.run", 0, 0.3),
    ]


class TestTraceModel:
    def test_parses_runs_segments_and_spans(self):
        model = TraceModel(_fixture_events())
        assert len(model.runs) == 1
        run = model.runs[0]
        assert run.workload == "w" and run.policy == "sysscale"
        assert len(run.segments) == 2 and len(run.transitions) == 1
        assert run.simulated_seconds == pytest.approx(0.75)
        assert run.model_evaluations == 1  # one memo hit of two segments
        assert len(model.spans) == 2
        assert model.describe()["engine_runs"] == 1

    def test_interleaved_worker_events_group_by_job_hash(self):
        a = _fixture_events(job_hash="a", workload="wa")
        b = _fixture_events(job_hash="b", workload="wb")
        # Interleave the two streams the way parallel workers append.
        events = [a[0], b[0], b[1], a[1], a[2], b[2], b[3], a[3]]
        model = TraceModel(events)
        assert len(model.runs) == 2
        by_workload = {run.workload: run for run in model.runs}
        assert len(by_workload["wa"].segments) == 2
        assert len(by_workload["wb"].segments) == 2

    def test_unstamped_events_close_at_run_summary(self):
        events = [
            _segment(0.0, 0.5, "compute"),
            _run_summary("first", "p"),
            _segment(0.0, 0.5, "compute"),
            _run_summary("second", "p"),
        ]
        model = TraceModel(events)
        assert [run.workload for run in model.runs] == ["first", "second"]


class TestTraceDiff:
    def test_identical_traces_have_zero_drift(self):
        a = TraceModel(_fixture_events())
        b = TraceModel(_fixture_events())
        diff = diff_traces(a, b)
        assert not diff.drift
        assert diff.changed_rows == []
        assert "no drift" in render_diff_text(diff)

    def test_moved_time_is_attributed_to_its_bucket(self):
        a = TraceModel(_fixture_events())
        longer = _fixture_events()
        longer[0]["duration_s"] = 0.9  # compute phase grows by 0.4s
        b = TraceModel(longer)
        diff = diff_traces(a, b)
        assert diff.drift
        top = diff.rows[0]  # sorted by |moved seconds|
        assert "compute" in top.label
        assert top.deltas["seconds"] == pytest.approx(0.4)
        assert diff.to_dict()["totals_delta"]["seconds"] == pytest.approx(0.4)
        assert "compute" in render_diff_text(diff)

    def test_one_sided_bucket_is_drift(self):
        a = TraceModel(_fixture_events())
        extra = _fixture_events()
        extra.insert(2, _segment(0.75, 0.1, "gfx", job_hash="h1"))
        b = TraceModel(extra)
        diff = diff_traces(a, b)
        assert diff.drift
        only_b = [row for row in diff.rows if row.status == "only_b"]
        assert len(only_b) == 1 and "gfx" in only_b[0].label

    def test_buckets_align_across_execution_order(self):
        a_events = _fixture_events(job_hash="a", workload="wa") + _fixture_events(
            job_hash="b", workload="wb"
        )
        b_events = _fixture_events(job_hash="b", workload="wb") + _fixture_events(
            job_hash="a", workload="wa"
        )
        diff = diff_traces(TraceModel(a_events), TraceModel(b_events))
        assert not diff.drift  # keys carry no ordering, so reordering is clean

    def test_attribution_splits_memo_hits_from_evaluations(self):
        buckets = attribution(TraceModel(_fixture_events()))
        by_phase = {key[2]: bucket for key, bucket in buckets.items()}
        assert by_phase["compute"].model_evaluations == 1
        assert by_phase["compute"].memo_hits == 0
        assert by_phase["memory"].memo_hits == 1
        assert by_phase["memory"].energy_j == pytest.approx(2.0 * 0.25)


class TestChromeExport:
    def test_document_shape_and_span_reconstruction(self):
        model = TraceModel(_fixture_events())
        document = chrome_trace_events(model)
        events = document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"
        # Two process_name metadata events lead.
        assert [e["name"] for e in events[:2]] == ["process_name", "process_name"]
        spans = [e for e in events if e.get("cat") == "span"]
        assert len(spans) == 2
        parent = next(e for e in spans if e["name"] == "cli.run")
        child = next(e for e in spans if e["name"] == "engine.run")
        # Post-order reconstruction: the depth-1 exit before cli.run's exit is
        # its child, laid out from the parent's start.
        assert child["args"]["depth"] == 1
        assert child["ts"] == parent["ts"]
        assert child["dur"] == pytest.approx(0.2e6)
        segments = [e for e in events if e.get("cat") == "engine.segment"]
        assert [s["name"] for s in segments] == ["compute", "memory"]
        assert segments[0]["ts"] == 0.0
        assert segments[1]["ts"] == pytest.approx(0.5e6)
        assert segments[1]["args"]["memo_hit"] is True
        transitions = [e for e in events if e.get("cat") == "engine.transition"]
        assert len(transitions) == 1

    def test_export_writes_valid_json(self, tmp_path):
        model = TraceModel(_fixture_events())
        out = tmp_path / "trace.chrome.json"
        export_chrome_trace(model, out)
        document = json.loads(out.read_text())
        assert document["otherData"]["source"] == "repro trace export --chrome"
        assert len(document["traceEvents"]) > 0


class TestMetricsSampler:
    def test_samples_poll_the_registry(self):
        sink = MemorySink()
        with obs_state.scoped(enabled=True, sinks=[sink]):
            obs.gauge("executor.queue_depth").set(3)
            obs.counter("cache.hits").inc(3)
            obs.counter("cache.misses").inc(1)
            sampler = MetricsSampler(interval=60.0)  # no timer ticks in-test
            sampler.start()
            obs.gauge("executor.queue_depth").set(7)
            sampler.stop()
        samples = [e for e in sink.events if e["type"] == "timeseries.sample"]
        assert len(samples) == 2  # immediate start sample + final stop sample
        assert [s["seq"] for s in samples] == [0, 1]
        assert samples[0]["queue_depth"] == 3
        assert samples[1]["queue_depth"] == 7
        assert samples[1]["cache_hit_ratio"] == pytest.approx(0.75)
        assert samples[1]["t"] >= samples[0]["t"] >= 0.0

    def test_background_thread_emits_monotonic_sequence(self):
        sink = MemorySink()
        with obs_state.scoped(enabled=True, sinks=[sink]):
            with MetricsSampler(interval=0.01):
                SerialExecutor().run([_tiny_job()])
        samples = [e for e in sink.events if e["type"] == "timeseries.sample"]
        assert len(samples) >= 2
        sequences = [s["seq"] for s in samples]
        assert sequences == sorted(sequences)
        times = [s["t"] for s in samples]
        assert times == sorted(times)

    def test_sampler_sees_warm_pool_executor_gauges(self, tmp_path):
        jobs = [
            _tiny_job(),
            _tiny_job(policy="sysscale"),
            _tiny_job(name="416.gamess"),
            _tiny_job(name="416.gamess", policy="sysscale"),
        ]
        sink = MemorySink()
        with ParallelExecutor(max_workers=2) as pool:
            pool.run([_tiny_job()], cache=ResultCache(tmp_path / "warm"))  # warm pool
            with obs_state.scoped(enabled=True, sinks=[sink]):
                with MetricsSampler(interval=0.005):
                    pool.run(jobs, cache=ResultCache(tmp_path / "cache"))
        samples = [e for e in sink.events if e["type"] == "timeseries.sample"]
        assert len(samples) >= 2
        final = samples[-1]
        assert final["jobs_executed"] == len(jobs)
        assert final["in_flight"] == 0  # gauges drained by the end of the run
        assert max(s["workers"] for s in samples) == 2

    def test_sampler_is_bit_inert(self, tmp_path):
        """Payloads are identical with the sampler on or off."""
        jobs = [_tiny_job(), _tiny_job(policy="sysscale")]
        plain = SerialExecutor().run(jobs, cache=ResultCache(tmp_path / "a"))
        sink = MemorySink()
        with obs_state.scoped(enabled=True, sinks=[sink]):
            with MetricsSampler(interval=0.005):
                sampled = SerialExecutor().run(jobs, cache=ResultCache(tmp_path / "b"))
        assert sampled.payloads() == plain.payloads()
        assert any(e["type"] == "timeseries.sample" for e in sink.events)

    def test_summarize_timeseries(self):
        samples = [
            {"type": "timeseries.sample", "seq": 0, "t": 0.0, "interval_s": 1.0,
             "queue_depth": 4, "cache_hit_ratio": None},
            {"type": "timeseries.sample", "seq": 1, "t": 1.0, "interval_s": 1.0,
             "queue_depth": 2, "cache_hit_ratio": 0.5},
            {"type": "timeseries.sample", "seq": 2, "t": 2.0, "interval_s": 1.0,
             "queue_depth": 0, "cache_hit_ratio": 1.0},
        ]
        summary = summarize_timeseries(samples)
        assert summary["samples"] == 3
        assert summary["span_s"] == pytest.approx(2.0)
        depth = summary["metrics"]["queue_depth"]
        assert depth == {"min": 0, "mean": 2.0, "max": 4, "last": 0}
        # None values (ratio before any lookup) are skipped, not zero-counted.
        assert summary["metrics"]["cache_hit_ratio"]["mean"] == pytest.approx(0.75)

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsSampler(interval=0.0)


def _bench_document(quick=False, **overrides):
    document = {
        "schema": 2,
        "bench": 7,
        "quick": quick,
        "results": {
            "engine": {
                "speedup": 50.0,
                "fast_ticks_per_second": 3e5,
                "fast_samples": [0.010, 0.0101, 0.0102],
                "bit_identical": True,
            },
            "engine_markov": {
                "speedup": 30.0,
                "fast_ticks_per_second": 2e5,
                "fast_samples": [0.020, 0.0201, 0.0202],
                "bit_identical": True,
            },
            "engine_telemetry": {"bit_identical": True},
            "jobs_serial": {
                "cold_jobs_per_second": 400.0,
                "warm_jobs_per_second": 40000.0,
                "bit_identical": True,
            },
            "jobs_parallel": {
                "cold_jobs_per_second": 250.0,
                "pool_reuse_jobs_per_second": 500.0,
                "bit_identical": True,
            },
        },
        "checks": {"engine_speedup_at_least_5x": True},
        "ok": True,
    }
    for path, value in overrides.items():
        node = document
        parts = path.split(".")
        for part in parts[:-1]:
            node = node[part]
        node[parts[-1]] = value
    return document


class TestBenchCompare:
    def test_self_comparison_passes(self):
        comparison = compare_documents(_bench_document(), _bench_document())
        assert comparison.ok
        assert "result: PASS" in render_comparison_text(comparison)

    def test_regression_beyond_budget_fails(self):
        current = _bench_document(**{"results.engine.speedup": 20.0})  # -60%
        comparison = compare_documents(_bench_document(), current)
        assert not comparison.ok
        regressed = {verdict.metric for verdict in comparison.regressions}
        assert "results.engine.speedup" in regressed
        assert "result: FAIL" in render_comparison_text(comparison)

    def test_small_delta_within_budget_passes(self):
        current = _bench_document(**{"results.engine.speedup": 45.0})  # -10%
        assert compare_documents(_bench_document(), current).ok

    def test_noisy_samples_widen_the_budget(self):
        # 100% observed spread x 3 = 300% budget: a 60% drop now passes.
        noisy = [0.010, 0.015, 0.020]
        baseline = _bench_document(**{"results.engine.fast_samples": noisy})
        current = _bench_document(
            **{"results.engine.speedup": 20.0, "results.engine.fast_samples": noisy}
        )
        comparison = compare_documents(baseline, current)
        verdict = next(
            v
            for v in comparison.verdicts
            if v.metric == "results.engine.speedup" and v.kind == "timing"
        )
        assert verdict.ok
        assert "noise" in verdict.budget_source

    def test_hard_floor_fails_even_against_slow_baseline(self):
        baseline = _bench_document(**{"results.engine.speedup": 4.5})
        current = _bench_document(**{"results.engine.speedup": 4.0})
        comparison = compare_documents(baseline, current)
        floors = [v for v in comparison.verdicts if v.kind == "floor" and not v.ok]
        assert any(v.metric == "results.engine.speedup" for v in floors)

    def test_bit_identity_flag_is_strict(self):
        current = _bench_document(
            **{"results.engine_telemetry.bit_identical": False}
        )
        comparison = compare_documents(_bench_document(), current)
        assert not comparison.ok

    def test_mode_mismatch_skips_timing_metrics(self):
        comparison = compare_documents(
            _bench_document(quick=False),
            _bench_document(quick=True, **{"results.engine.speedup": 10.0}),
        )
        assert comparison.mode_mismatch
        assert comparison.ok  # -80% timing delta skipped; floors/flags pass
        kinds = {v.metric: v.kind for v in comparison.verdicts if v.kind != "flag"}
        assert kinds["results.engine.fast_ticks_per_second"] == "info"

    def test_budget_derivation(self):
        assert relative_spread([1.0, 1.0, 1.0]) == pytest.approx(0.0)
        assert relative_spread([1.0, 2.0]) == pytest.approx(1.0)
        budget, source = derive_budget(None, None, rel_floor=0.35)
        assert budget == pytest.approx(0.35) and source == "floor"
        budget, source = derive_budget([1.0, 2.0], None, rel_floor=0.35)
        assert budget == pytest.approx(3.0) and "noise" in source

    def test_load_rejects_non_bench_documents(self, tmp_path):
        path = tmp_path / "not_bench.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            load_bench_document(path)


class TestAnalysisCli:
    def _write_trace(self, path, events):
        path.write_text(
            "".join(json.dumps(event) + "\n" for event in events), encoding="utf-8"
        )

    def test_trace_diff_same_run_reports_zero_drift(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._write_trace(a, _fixture_events())
        self._write_trace(b, _fixture_events())
        assert main(["trace", "diff", str(a), str(b)]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_trace_diff_json_reports_drift(self, tmp_path, capsys):
        events = _fixture_events()
        events[0]["duration_s"] = 0.9
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._write_trace(a, _fixture_events())
        self._write_trace(b, events)
        assert main(["trace", "diff", str(a), str(b), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["drift"] is True
        assert document["changed"] == 1

    def test_trace_diff_missing_file_exits_2(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        self._write_trace(a, _fixture_events())
        assert main(["trace", "diff", str(a), str(tmp_path / "missing.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_trace_export_chrome(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        out = tmp_path / "a.chrome.json"
        self._write_trace(a, _fixture_events())
        assert main(["trace", "export", str(a), "--chrome", str(out)]) == 0
        assert "trace event(s)" in capsys.readouterr().out
        assert json.loads(out.read_text())["traceEvents"]

    def test_bench_compare_pass_and_fail(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_bench_document()))
        same = tmp_path / "same.json"
        same.write_text(json.dumps(_bench_document()))
        assert main(["bench", "compare", str(baseline), str(same)]) == 0
        assert "result: PASS" in capsys.readouterr().out

        regressed = tmp_path / "regressed.json"
        regressed.write_text(
            json.dumps(_bench_document(**{"results.engine.speedup": 20.0}))
        )
        assert main(["bench", "compare", str(baseline), str(regressed)]) == 1
        assert "result: FAIL" in capsys.readouterr().out

    def test_bench_compare_json_output(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_bench_document()))
        assert main(["bench", "compare", str(baseline), str(baseline), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True and document["regressions"] == 0

    def test_bench_compare_unreadable_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        assert main(["bench", "compare", str(missing)]) == 2
        assert "cannot read baseline" in capsys.readouterr().err

    def test_run_sample_interval_records_timeseries(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        assert main([
            "run", "fig7", "--quick", "--duration", "0.05", "--max-time", "0.05",
            "--cache-dir", str(tmp_path / "cache"),
            "--trace-out", str(trace_path), "--sample-interval", "0.01",
        ]) == 0
        capsys.readouterr()
        events = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line
        ]
        samples = [e for e in events if e["type"] == "timeseries.sample"]
        assert len(samples) >= 2
        # And trace describe surfaces the time-series summary.
        assert main(["trace", "describe", str(trace_path)]) == 0
        assert "timeseries:" in capsys.readouterr().out

    def test_run_sample_interval_must_be_positive(self, capsys):
        assert main([
            "run", "fig5", "--quick", "--no-cache", "--sample-interval", "0",
        ]) == 2
        assert "--sample-interval" in capsys.readouterr().err
