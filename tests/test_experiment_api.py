"""The first-class experiment API: report types, registry, exports, Session.

Covers the acceptance surface of the experiment-API redesign:

* ``ExperimentReport`` ``to_dict``/``from_dict`` round-trips exactly (including
  through a JSON encode/decode);
* the CSV and JSON exports match golden documents;
* the registry is complete -- every experiment module's ``run_*`` entry has a
  registered spec, and every registered spec runs in ``--quick`` mode;
* ``python -m repro run <target> --json`` emits a parseable report for *all*
  targets, and a warm-cache rerun exports bit-identical numbers;
* the :class:`repro.api.Session` facade drives experiments and single
  simulations through one cached runtime.
"""

import importlib
import inspect
import json
import pkgutil

import pytest

import repro.experiments
from repro.api import Session
from repro.experiments import build_context
from repro.experiments.api import CONTEXT_FLAGS, REGISTRY, get_spec, registry
from repro.experiments.report import (
    ExperimentReport,
    Metric,
    RunInfo,
    Series,
    Table,
    render_csv,
    render_json,
)
from repro.runtime.cli import main
from repro.sim.engine import SimulationConfig

#: Modules that are plumbing, not experiments.
NON_EXPERIMENT_MODULES = {"runner", "report", "api"}

ALL_TARGETS = (
    "table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    "fig8", "fig9", "fig10", "sensitivity", "robustness", "hwsweep",
)


@pytest.fixture(scope="module")
def tiny_context():
    return build_context(
        workload_duration=0.05,
        sim_config=SimulationConfig(max_simulated_time=0.05),
    )


def _demo_report() -> ExperimentReport:
    return ExperimentReport(
        experiment="demo",
        title="Demo experiment",
        params={"subset": ("a", "b"), "n": 2},
        blocks=(
            Table(
                key="rows",
                columns=("name", "value"),
                rows=(("a", 1.5), ("b", 2.0)),
                units=(("value", "W"),),
            ),
            Series(
                key="timeline",
                x=(0.0, 1.0),
                y=(3.0, 4.0),
                x_label="t",
                y_label="bw",
                unit="GB/s",
            ),
            Metric("average/value", 1.75, "W"),
        ),
        run=RunInfo(submitted=2, unique=2, executed=2, cache_hits=0),
    )


class TestReportRoundTrip:
    def test_handmade_report_round_trips_exactly(self):
        report = _demo_report()
        assert ExperimentReport.from_dict(report.to_dict()) == report

    def test_round_trip_survives_json_encoding(self):
        report = _demo_report()
        document = json.loads(json.dumps(report.to_dict()))
        assert ExperimentReport.from_dict(document) == report

    def test_real_reports_round_trip(self, tiny_context):
        for target in ("table1", "fig5", "fig7"):
            report = get_spec(target).run(tiny_context, quick=True)
            recovered = ExperimentReport.from_dict(
                json.loads(json.dumps(report.to_dict()))
            )
            assert recovered == report
            assert recovered.to_dict() == report.to_dict()

    def test_legacy_mapping_view(self):
        report = _demo_report()
        assert report["rows"][0] == {"name": "a", "value": 1.5}
        assert report["average"]["value"] == 1.75
        assert report["timeline"][1] == {"t": 1.0, "bw": 4.0}
        assert "rows" in report
        assert set(report.keys()) == {"experiment", "rows", "timeline", "average"}
        assert report["experiment"] == "demo"

    def test_table_units_order_is_canonical(self):
        """Unit order never breaks the exact round trip: the constructor
        sorts, matching ``from_dict``'s reconstruction order."""
        table = Table(
            key="t",
            columns=("a", "b"),
            rows=((1, 2),),
            units=(("b", "W"), ("a", "s")),
        )
        assert table.units == (("a", "s"), ("b", "W"))
        assert Table.from_dict(table.to_dict()) == table

    def test_rejects_unknown_schema(self):
        document = _demo_report().to_dict()
        document["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            ExperimentReport.from_dict(document)

    def test_results_dict_drops_only_run_accounting(self):
        report = _demo_report()
        full = report.to_dict()
        results = report.results_dict()
        assert "run" not in results
        full.pop("run")
        assert results == full


class TestExportGoldens:
    def test_csv_golden(self):
        expected = "\n".join(
            [
                "experiment,demo",
                "param,n,2",
                'param,subset,"[""a"",""b""]"',
                "",
                "table,rows",
                "name,value",
                "a,1.5",
                "b,2.0",
                "",
                "series,timeline",
                "t,bw",
                "0.0,3.0",
                "1.0,4.0",
                "",
                "metrics",
                "key,value,unit",
                "average/value,1.75,W",
                "",
            ]
        )
        assert render_csv(_demo_report()) == expected

    def test_json_golden(self):
        document = json.loads(render_json(_demo_report()))
        spec_hash = document.pop("spec_hash")
        assert len(spec_hash) == 64 and int(spec_hash, 16) >= 0
        assert document == {
            "schema": 1,
            "experiment": "demo",
            "title": "Demo experiment",
            "params": {"subset": ["a", "b"], "n": 2},
            "run": {"submitted": 2, "unique": 2, "executed": 2, "cache_hits": 0},
            "blocks": [
                {
                    "type": "table",
                    "key": "rows",
                    "columns": ["name", "value"],
                    "rows": [["a", 1.5], ["b", 2.0]],
                    "units": {"value": "W"},
                },
                {
                    "type": "series",
                    "key": "timeline",
                    "x": [0.0, 1.0],
                    "y": [3.0, 4.0],
                    "x_label": "t",
                    "y_label": "bw",
                    "unit": "GB/s",
                },
                {
                    "type": "metric",
                    "key": "average/value",
                    "value": 1.75,
                    "unit": "W",
                },
            ],
        }

    def test_spec_hash_ignores_results_but_not_params(self):
        base = _demo_report()
        same_ask = ExperimentReport(
            experiment="demo", title="other title", params={"subset": ("a", "b"), "n": 2}
        )
        different_ask = ExperimentReport(experiment="demo", params={"n": 3})
        assert base.spec_hash == same_ask.spec_hash
        assert base.spec_hash != different_ask.spec_hash


class TestRegistryCompleteness:
    def test_all_targets_registered(self):
        assert set(registry()) == set(ALL_TARGETS)

    def test_every_experiment_module_registers_a_spec(self):
        registered_modules = {spec.runner.__module__ for spec in REGISTRY.values()}
        for info in pkgutil.iter_modules(repro.experiments.__path__):
            if info.name in NON_EXPERIMENT_MODULES or info.name.startswith("_"):
                continue
            module_name = f"repro.experiments.{info.name}"
            assert module_name in registered_modules, (
                f"{module_name} has no registered experiment spec"
            )

    def test_every_run_function_is_reachable_from_a_spec(self):
        """Each module-level ``run_*`` entry lives in a module whose spec
        adapter calls it (adapters are registered next to their run_*)."""
        for info in pkgutil.iter_modules(repro.experiments.__path__):
            if info.name in NON_EXPERIMENT_MODULES or info.name.startswith("_"):
                continue
            module = importlib.import_module(f"repro.experiments.{info.name}")
            entries = [
                name
                for name, obj in vars(module).items()
                if name.startswith("run_")
                and inspect.isfunction(obj)
                and obj.__module__ == module.__name__
            ]
            assert entries, f"{module.__name__} has no run_* entry"

    def test_declared_flags_are_known(self):
        for spec in REGISTRY.values():
            assert set(spec.flags) <= set(CONTEXT_FLAGS)
            assert set(spec.ignored_flags) == set(CONTEXT_FLAGS) - set(spec.flags)

    @pytest.mark.parametrize("target", sorted(ALL_TARGETS))
    def test_every_spec_runs_in_quick_mode(self, target, tiny_context):
        report = get_spec(target).run(tiny_context, quick=True)
        assert isinstance(report, ExperimentReport)
        assert report.experiment == target
        assert report.blocks

    def test_get_spec_unknown_target(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_spec("fig99")


class TestCliAllTargets:
    def test_run_json_round_trips_for_every_target(self, tmp_path, capsys):
        """Acceptance: ``run <target> --json`` parses back through
        ``ExperimentReport.from_dict`` for all registry targets."""
        args = [
            "run", *ALL_TARGETS, "--quick", "--json",
            "--duration", "0.05", "--max-time", "0.05",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        documents = json.loads(capsys.readouterr().out)
        assert [d["experiment"] for d in documents] == list(ALL_TARGETS)
        for document in documents:
            report = ExperimentReport.from_dict(document)
            assert report.to_dict() == document

    def test_warm_rerun_simulates_nothing_and_matches(self, tmp_path, capsys):
        args = [
            "run", "fig9", "--json",
            "--duration", "0.05", "--max-time", "0.05",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        captured = capsys.readouterr()
        cold = json.loads(captured.out)
        assert main(args) == 0
        captured = capsys.readouterr()
        warm = json.loads(captured.out)
        assert ", 0 simulated" in captured.err
        assert warm["run"]["executed"] == 0
        assert warm["run"]["cache_hits"] == warm["run"]["unique"] > 0
        cold.pop("run")
        warm.pop("run")
        assert warm == cold


class TestSession:
    def test_run_returns_report_and_caches(self, tmp_path):
        session = Session(
            cache_dir=str(tmp_path / "cache"), duration=0.05, max_time=0.05
        )
        first = session.run("fig7", quick=True)
        assert isinstance(first, ExperimentReport)
        assert session.runtime.executed > 0

        warm = Session(
            cache_dir=str(tmp_path / "cache"), duration=0.05, max_time=0.05
        )
        second = warm.run("fig7", quick=True)
        assert warm.runtime.executed == 0
        assert warm.runtime.cache_hits == warm.runtime.unique
        assert second.results_dict() == first.results_dict()

    def test_run_accepts_declared_params_only(self, tmp_path):
        session = Session(
            cache_dir=str(tmp_path / "cache"), duration=0.05, max_time=0.05
        )
        report = session.run("fig7", subset=("470.lbm",))
        assert [row["workload"] for row in report["rows"]] == ["470.lbm"]
        with pytest.raises(TypeError, match="does not accept"):
            session.run("fig7", bogus=1)

    def test_simulate_runs_one_job_through_the_runtime(self, tmp_path):
        session = Session(
            cache_dir=str(tmp_path / "cache"), duration=0.05, max_time=0.05
        )
        baseline = session.simulate("spec", "baseline", name="470.lbm", duration=0.05)
        sysscale = session.simulate("spec", "sysscale", name="470.lbm", duration=0.05)
        assert baseline.execution_time > 0
        assert sysscale.energy.total > 0
        assert session.runtime.submitted == 2
        assert "2 job(s) submitted" in session.summary()

    def test_specs_listing(self):
        session = Session(cache=False)
        specs = session.specs()
        assert set(specs) == set(ALL_TARGETS)
        assert specs["fig7"].title.startswith("Fig. 7")

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            Session(jobs=0)
