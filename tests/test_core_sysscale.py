"""Tests for SysScale's core components: operating points, thresholds, demand
prediction, holistic algorithm, transition flow, and the controller."""

import pytest

from repro import config
from repro.baselines.fixed import FixedBaselinePolicy
from repro.core.algorithm import HolisticPowerAlgorithm
from repro.core.demand import DemandPredictor, evaluate_prediction_quality
from repro.core.flow import TransitionFlow
from repro.core.operating_points import (
    OperatingPoint,
    OperatingPointTable,
    build_ddr4_operating_points,
    build_default_operating_points,
)
from repro.core.sysscale import SysScaleController
from repro.core.thresholds import ThresholdCalibrator
from repro.perf.counters import CounterName, CounterSample
from repro.sim.policy import StaticDemandInfo
from repro.workloads.io_devices import STANDARD_CONFIGURATIONS
from repro.workloads.microbenchmarks import compute_only_microbenchmark
from repro.workloads.spec2006 import spec_workload


def _sample(gfx=0.0, occupancy=0.0, stalls=0.0, io=0.0):
    return CounterSample(
        values={
            CounterName.GFX_LLC_MISSES: gfx,
            CounterName.LLC_OCCUPANCY_TRACER: occupancy,
            CounterName.LLC_STALLS: stalls,
            CounterName.IO_RPQ: io,
        }
    )


class TestOperatingPoints:
    def test_default_table_matches_table1(self, platform):
        table = build_default_operating_points(platform)
        assert len(table) == 2
        assert table.high.dram_frequency == pytest.approx(1.6e9)
        assert table.low.dram_frequency == pytest.approx(1.06e9)
        assert table.low.v_sa_scale == pytest.approx(config.V_SA_LOW_SCALE)
        assert table.low.v_io_scale == pytest.approx(config.V_IO_LOW_SCALE)

    def test_three_point_table(self, platform):
        table = build_default_operating_points(platform, include_lowest_bin=True)
        assert len(table) == 3
        assert table.low.dram_frequency == pytest.approx(0.8e9)

    def test_navigation(self, operating_points):
        assert operating_points.next_lower(operating_points.high) is operating_points.low
        assert operating_points.next_higher(operating_points.low) is operating_points.high
        assert operating_points.next_lower(operating_points.low) is operating_points.low

    def test_low_point_provisioned_power_is_smaller(self, platform, operating_points):
        assert operating_points.low.provisioned_io_memory_power(
            platform
        ) < operating_points.high.provisioned_io_memory_power(platform)

    def test_to_action_round_trip(self, platform, operating_points):
        action = operating_points.low.to_action(platform)
        assert action.dram_frequency == pytest.approx(1.06e9)
        assert action.io_memory_budget > 0

    def test_ddr4_table(self):
        table = build_ddr4_operating_points()
        assert table.high.dram_frequency == pytest.approx(1.86e9)
        assert table.low.dram_frequency == pytest.approx(1.33e9)

    def test_duplicate_frequencies_rejected(self):
        point = OperatingPoint("a", 1.6e9, 0.8e9, 1.0, 1.0)
        with pytest.raises(ValueError):
            OperatingPointTable(points=[point, OperatingPoint("b", 1.6e9, 0.4e9, 0.9, 0.9)])


class TestThresholds:
    def test_boundary_thresholds_are_positive(self, thresholds):
        for name in CounterName:
            assert thresholds[name] > 0

    def test_compute_bound_workload_below_thresholds(self, platform, operating_points, thresholds):
        calibrator = ThresholdCalibrator(platform=platform, operating_points=operating_points)
        counters = calibrator.measure_counters(spec_workload("416.gamess"))
        assert not thresholds.any_exceeded(counters)

    def test_memory_bound_workload_exceeds_thresholds(self, platform, operating_points, thresholds):
        calibrator = ThresholdCalibrator(platform=platform, operating_points=operating_points)
        counters = calibrator.measure_counters(spec_workload("470.lbm"))
        assert thresholds.any_exceeded(counters)

    def test_degradation_measurement_orders_workloads(self, platform, operating_points):
        calibrator = ThresholdCalibrator(platform=platform, operating_points=operating_points)
        assert calibrator.measure_degradation(
            spec_workload("470.lbm")
        ) > calibrator.measure_degradation(spec_workload("416.gamess"))

    def test_corpus_calibration_pipeline(self, platform, operating_points):
        from repro.workloads.corpus import CorpusGenerator

        calibrator = ThresholdCalibrator(platform=platform, operating_points=operating_points)
        corpus = CorpusGenerator(seed=42).generate(single_thread=30, multi_thread=10, graphics=10)
        assert calibrator.add_corpus(corpus) == 50
        thresholds = calibrator.calibrate()
        for name in CounterName:
            assert thresholds[name] > 0

    def test_calibrate_without_runs_raises(self, platform, operating_points):
        calibrator = ThresholdCalibrator(platform=platform, operating_points=operating_points)
        with pytest.raises(ValueError):
            calibrator.calibrate()


class TestDemandPredictor:
    def test_all_quiet_means_low_safe(self, thresholds):
        predictor = DemandPredictor(thresholds=thresholds)
        prediction = predictor.predict(_sample())
        assert prediction.low_point_safe

    def test_each_condition_triggers_high(self, thresholds):
        predictor = DemandPredictor(thresholds=thresholds)
        over = 10.0
        cases = {
            "gfx_bandwidth_limited": _sample(gfx=thresholds[CounterName.GFX_LLC_MISSES] * over),
            "cpu_bandwidth_limited": _sample(
                occupancy=thresholds[CounterName.LLC_OCCUPANCY_TRACER] * over
            ),
            "memory_latency_bound": _sample(stalls=thresholds[CounterName.LLC_STALLS] * over),
            "io_latency_bound": _sample(io=thresholds[CounterName.IO_RPQ] * over),
        }
        for condition, sample in cases.items():
            prediction = predictor.predict(sample)
            assert prediction.requires_high_point
            assert prediction.triggered_conditions[condition]

    def test_static_demand_condition(self, thresholds):
        predictor = DemandPredictor(thresholds=thresholds)
        heavy_display = StaticDemandInfo(peripherals=STANDARD_CONFIGURATIONS["single_4k"])
        prediction = predictor.predict(_sample(), heavy_display)
        assert prediction.requires_high_point
        assert prediction.triggered_conditions["static_bandwidth"]

    def test_hd_display_does_not_force_high_point(self, thresholds):
        predictor = DemandPredictor(thresholds=thresholds)
        hd = StaticDemandInfo(peripherals=STANDARD_CONFIGURATIONS["single_hd"])
        assert predictor.predict(_sample(), hd).low_point_safe

    def test_prediction_statistics(self, thresholds):
        predictor = DemandPredictor(thresholds=thresholds)
        predictor.predict(_sample())
        predictor.predict(_sample(stalls=1e9))
        assert predictor.prediction_count == 2
        assert predictor.low_prediction_fraction == pytest.approx(0.5)

    def test_quality_evaluation(self):
        quality = evaluate_prediction_quality([True, False, True], [True, False, False])
        assert quality.accuracy == pytest.approx(2 / 3)
        assert quality.false_positives == 1
        with pytest.raises(ValueError):
            evaluate_prediction_quality([True], [True, False])


class TestHolisticAlgorithm:
    def test_starts_high_and_drops_when_quiet(self, platform, operating_points, thresholds):
        algorithm = HolisticPowerAlgorithm(
            platform=platform,
            operating_points=operating_points,
            predictor=DemandPredictor(thresholds=thresholds),
        )
        assert algorithm.reset() is operating_points.high
        decision = algorithm.decide(_sample())
        assert decision.operating_point is operating_points.low
        assert decision.changed

    def test_returns_high_under_pressure(self, platform, operating_points, thresholds):
        algorithm = HolisticPowerAlgorithm(
            platform=platform,
            operating_points=operating_points,
            predictor=DemandPredictor(thresholds=thresholds),
        )
        algorithm.reset()
        algorithm.decide(_sample())
        decision = algorithm.decide(_sample(stalls=1e9))
        assert decision.operating_point is operating_points.high
        assert algorithm.transition_count == 2

    def test_low_point_enlarges_compute_budget(self, platform, operating_points, thresholds):
        algorithm = HolisticPowerAlgorithm(
            platform=platform,
            operating_points=operating_points,
            predictor=DemandPredictor(thresholds=thresholds),
        )
        algorithm.reset()
        low_decision = algorithm.decide(_sample())
        high_decision = algorithm.decide(_sample(stalls=1e9))
        assert low_decision.compute_budget > high_decision.compute_budget


class TestTransitionFlow:
    @pytest.fixture
    def flow(self):
        from repro.sim.platform import build_platform

        platform = build_platform()
        points = build_default_operating_points(platform)
        return (
            TransitionFlow(
                rails=platform.soc.rails,
                interconnect=platform.soc.interconnect_fabric,
                dram=platform.dram,
                mrc_sram=platform.mrc_sram,
                mrc_registers=platform.mrc_registers,
            ),
            points,
            platform,
        )

    def test_down_transition_within_budget(self, flow):
        transition_flow, points, _ = flow
        report = transition_flow.execute(points.high, points.low)
        assert report.within_budget
        assert report.mrc_reloaded
        assert not report.increasing_frequency

    def test_up_transition_raises_voltage_first(self, flow):
        transition_flow, points, _ = flow
        transition_flow.execute(points.high, points.low)
        report = transition_flow.execute(points.low, points.high)
        assert report.increasing_frequency
        assert report.step_latencies[list(report.step_latencies)[1]] >= 0

    def test_flow_updates_hardware_state(self, flow):
        transition_flow, points, platform = flow
        transition_flow.execute(points.high, points.low)
        assert platform.dram.current_frequency == pytest.approx(1.06e9)
        assert platform.mrc_registers.is_optimized_for(1.06e9)
        assert platform.soc.interconnect_fabric.frequency == pytest.approx(0.4e9)
        transition_flow.execute(points.low, points.high)
        assert platform.dram.current_frequency == pytest.approx(1.6e9)

    def test_estimate_close_to_actual(self, flow):
        transition_flow, points, _ = flow
        estimate = transition_flow.estimate_latency(points.high, points.low)
        report = transition_flow.execute(points.high, points.low)
        assert estimate == pytest.approx(report.total_latency, rel=0.5)


class TestSysScaleController:
    def test_compute_bound_workload_reaches_low_point(self, platform, thresholds, engine):
        controller = SysScaleController(platform=platform, thresholds=thresholds)
        trace = compute_only_microbenchmark(duration=0.3)
        result = engine.run(trace, controller)
        assert result.low_point_residency > 0.7

    def test_memory_bound_workload_stays_high(self, platform, thresholds, engine):
        controller = SysScaleController(platform=platform, thresholds=thresholds)
        trace = spec_workload("470.lbm", duration=0.3)
        result = engine.run(trace, controller)
        assert result.low_point_residency == 0.0

    def test_sysscale_never_slows_down_memory_bound_workloads(self, platform, thresholds, engine):
        trace = spec_workload("433.milc", duration=0.3)
        baseline = engine.run(trace, FixedBaselinePolicy())
        sysscale = engine.run(trace, SysScaleController(platform=platform, thresholds=thresholds))
        assert sysscale.performance_improvement_over(baseline) >= -0.01

    def test_sysscale_speeds_up_compute_bound_workloads(self, platform, thresholds, engine):
        trace = spec_workload("416.gamess", duration=0.3)
        baseline = engine.run(trace, FixedBaselinePolicy())
        sysscale = engine.run(trace, SysScaleController(platform=platform, thresholds=thresholds))
        assert sysscale.performance_improvement_over(baseline) > 0.05

    def test_transition_reports_accumulate(self, platform, thresholds, engine):
        controller = SysScaleController(platform=platform, thresholds=thresholds)
        engine.run(spec_workload("473.astar", duration=0.3), controller)
        assert controller.algorithm.transition_count >= 1

    def test_nominal_latency_mode(self, platform, thresholds, engine):
        controller = SysScaleController(
            platform=platform, thresholds=thresholds, use_flow_latency=False
        )
        result = engine.run(compute_only_microbenchmark(duration=0.2), controller)
        assert result.transition_time <= result.transitions * config.TRANSITION_TOTAL_LATENCY_BUDGET + 1e-9
