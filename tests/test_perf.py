"""Tests for the performance model, counters, bottleneck and scalability helpers."""

import pytest

from repro import config
from repro.perf.bottleneck import analyze_bottlenecks
from repro.perf.counters import CounterName, CounterSample
from repro.perf.model import PhasePerformanceModel
from repro.perf.scalability import amdahl_speedup, frequency_scalability, projected_improvement
from repro.soc.domains import SoCState
from repro.workloads.microbenchmarks import (
    compute_only_microbenchmark,
    peak_bandwidth_microbenchmark,
    pointer_chasing_microbenchmark,
)
from repro.workloads.spec2006 import spec_workload


LOW_STATE = SoCState(
    dram_frequency=1.06e9,
    interconnect_frequency=0.4e9,
    v_sa_scale=0.8,
    v_io_scale=0.85,
)


class TestPhasePerformanceModel:
    def test_reference_state_has_unit_slowdown(self, platform):
        phase = spec_workload("416.gamess").phases[0]
        slowdown = platform.performance_model.slowdown(phase, SoCState())
        assert slowdown.total == pytest.approx(1.0, abs=0.02)

    def test_higher_cpu_frequency_speeds_up_compute_bound(self, platform):
        phase = compute_only_microbenchmark().phases[0]
        fast = SoCState(cpu_frequency=1.8e9)
        assert platform.performance_model.slowdown(phase, fast).total < 1.0

    def test_memory_scaling_hurts_latency_bound(self, platform):
        phase = pointer_chasing_microbenchmark().phases[0]
        slowdown = platform.performance_model.slowdown(phase, LOW_STATE)
        assert slowdown.total > 1.05

    def test_memory_scaling_barely_affects_compute_bound(self, platform):
        phase = compute_only_microbenchmark().phases[0]
        slowdown = platform.performance_model.slowdown(phase, LOW_STATE)
        assert slowdown.total < 1.01

    def test_bandwidth_bound_workload_limited_by_ceiling(self, platform):
        phase = peak_bandwidth_microbenchmark().phases[0]
        slowdown = platform.performance_model.slowdown(phase, LOW_STATE)
        assert slowdown.total > 1.15

    def test_achieved_bandwidth_never_exceeds_ceiling(self, platform):
        phase = peak_bandwidth_microbenchmark().phases[0]
        slowdown = platform.performance_model.slowdown(phase, SoCState())
        assert slowdown.achieved_bandwidth <= platform.latency_model.reference_bandwidth() + 1.0

    def test_execution_time_scales_with_duration(self, platform):
        phase = spec_workload("470.lbm").phases[0]
        time_1 = platform.performance_model.execution_time(phase, SoCState())
        time_2 = platform.performance_model.execution_time(phase.scaled_duration(2.0), SoCState())
        assert time_2 == pytest.approx(2 * time_1)

    def test_speedup_is_inverse_slowdown(self, platform):
        phase = spec_workload("470.lbm").phases[0]
        slowdown = platform.performance_model.slowdown(phase, LOW_STATE).total
        assert platform.performance_model.speedup_over_reference(phase, LOW_STATE) == pytest.approx(
            1.0 / slowdown
        )

    def test_invalid_io_sensitivity(self, platform):
        with pytest.raises(ValueError):
            PhasePerformanceModel(latency_model=platform.latency_model, io_sensitivity=2.0)


class TestCounters:
    def test_sample_contains_all_counters(self, platform):
        phase = spec_workload("470.lbm").phases[0]
        sample = platform.counter_unit.sample(phase, SoCState())
        for name in CounterName:
            assert sample[name] >= 0.0

    def test_memory_bound_workload_has_higher_stalls(self, platform):
        lbm = spec_workload("470.lbm").phases[0]
        gamess = spec_workload("416.gamess").phases[0]
        state = SoCState()
        assert (
            platform.counter_unit.sample(lbm, state)[CounterName.LLC_STALLS]
            > platform.counter_unit.sample(gamess, state)[CounterName.LLC_STALLS]
        )

    def test_counters_are_operating_point_invariant(self, platform):
        phase = spec_workload("470.lbm").phases[0]
        high = platform.counter_unit.sample(phase, SoCState())
        low = platform.counter_unit.sample(phase, LOW_STATE)
        for name in CounterName:
            assert high[name] == pytest.approx(low[name])

    def test_average_of_samples(self, platform):
        phase = spec_workload("470.lbm").phases[0]
        sample = platform.counter_unit.sample(phase, SoCState())
        averaged = CounterSample.average([sample, sample, sample])
        for name in CounterName:
            assert averaged[name] == pytest.approx(sample[name])

    def test_average_of_nothing_rejected(self):
        with pytest.raises(ValueError):
            CounterSample.average([])

    def test_missing_counter_rejected(self):
        with pytest.raises(ValueError):
            CounterSample(values={CounterName.IO_RPQ: 1.0})

    def test_graphics_counter_tracks_gfx_demand(self, platform):
        from repro.workloads.graphics import graphics_workload

        scene = graphics_workload("3DMark11").phases[0]
        cpu_only = spec_workload("416.gamess").phases[0]
        state = SoCState()
        assert (
            platform.counter_unit.sample(scene, state)[CounterName.GFX_LLC_MISSES]
            > platform.counter_unit.sample(cpu_only, state)[CounterName.GFX_LLC_MISSES]
        )


class TestBottleneckAndScalability:
    def test_lbm_is_bandwidth_dominated(self):
        breakdown = analyze_bottlenecks(spec_workload("470.lbm"))
        assert breakdown.dominant == "memory_bandwidth"

    def test_cactusadm_is_latency_dominated_among_memory(self):
        breakdown = analyze_bottlenecks(spec_workload("436.cactusADM"))
        assert breakdown.memory_latency_bound > breakdown.memory_bandwidth_bound

    def test_gamess_is_non_memory_bound(self):
        breakdown = analyze_bottlenecks(spec_workload("416.gamess"))
        assert breakdown.dominant == "non_memory"
        assert breakdown.memory_bound < 0.1

    def test_fractions_sum_to_one(self):
        breakdown = analyze_bottlenecks(spec_workload("473.astar"))
        total = (
            breakdown.memory_latency_bound
            + breakdown.memory_bandwidth_bound
            + breakdown.non_memory_bound
        )
        assert total == pytest.approx(1.0)

    def test_amdahl_speedup(self):
        assert amdahl_speedup(1.0, 1.2) == pytest.approx(1.2)
        assert amdahl_speedup(0.0, 1.2) == pytest.approx(1.0)
        assert 1.0 < amdahl_speedup(0.5, 1.2) < 1.2

    def test_projected_improvement(self):
        assert projected_improvement(1.0, 1.1) == pytest.approx(0.1)

    def test_scalability_selector(self):
        trace = spec_workload("416.gamess")
        assert frequency_scalability(trace, "cpu") > 0.9
        with pytest.raises(ValueError):
            frequency_scalability(trace, "npu")

    def test_invalid_amdahl_inputs(self):
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 1.1)
        with pytest.raises(ValueError):
            amdahl_speedup(0.5, 0.0)
