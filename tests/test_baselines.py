"""Tests for the baseline policies and the MemScale/CoScale projections."""

import pytest

from repro.baselines.coscale import CoScalePolicy, CoScaleRedistProjection
from repro.baselines.fixed import FixedBaselinePolicy
from repro.baselines.md_dvfs import StaticMdDvfsPolicy, build_md_dvfs_action
from repro.baselines.memscale import (
    MemScalePolicy,
    MemScaleRedistProjection,
    memscale_low_point,
)
from repro.workloads.batterylife import battery_life_workload
from repro.workloads.graphics import graphics_workload
from repro.workloads.spec2006 import spec_workload


class TestFixedBaseline:
    def test_decide_before_reset_raises(self):
        policy = FixedBaselinePolicy()
        with pytest.raises(RuntimeError):
            policy.decide(None)

    def test_action_is_worst_case_high_point(self, platform):
        policy = FixedBaselinePolicy()
        action = policy.reset(platform, spec_workload("416.gamess"))
        assert action.dram_frequency == pytest.approx(1.6e9)
        assert action.io_memory_budget == pytest.approx(platform.worst_case_io_memory_power())


class TestMdDvfs:
    def test_action_matches_table1(self, platform):
        action = build_md_dvfs_action(platform)
        assert action.dram_frequency == pytest.approx(1.06e9)
        assert action.interconnect_frequency == pytest.approx(0.4e9)
        assert action.v_sa_scale == pytest.approx(0.8)
        assert action.v_io_scale == pytest.approx(0.85)

    def test_redistribution_lowers_charged_budget(self, platform):
        fixed = build_md_dvfs_action(platform, redistribute_to_compute=False)
        redist = build_md_dvfs_action(platform, redistribute_to_compute=True)
        assert redist.io_memory_budget < fixed.io_memory_budget

    def test_policy_is_static(self, platform, engine):
        result = engine.run(spec_workload("400.perlbench", duration=0.2), StaticMdDvfsPolicy())
        assert result.transitions == 0
        assert result.low_point_residency == pytest.approx(1.0)


class TestMemScaleStructure:
    def test_low_point_keeps_interconnect_and_rails(self, platform):
        point = memscale_low_point(platform)
        assert point.dram_frequency == pytest.approx(1.06e9)
        assert point.interconnect_frequency == pytest.approx(0.8e9)
        assert point.v_sa_scale == 1.0 and point.v_io_scale == 1.0
        assert not point.mrc_optimized

    def test_memscale_policy_scales_down_quiet_workloads(self, platform, engine):
        result = engine.run(spec_workload("416.gamess", duration=0.3), MemScalePolicy())
        assert result.low_point_residency > 0.5

    def test_memscale_policy_backs_off_under_bandwidth(self, platform, engine):
        result = engine.run(spec_workload("470.lbm", duration=0.3), MemScalePolicy())
        assert result.low_point_residency < 0.5

    def test_coscale_policy_is_less_conservative(self):
        assert CoScalePolicy().utilization_threshold > MemScalePolicy().utilization_threshold


class TestProjections:
    @pytest.fixture(scope="class")
    def projections(self, platform):
        return (
            MemScaleRedistProjection(platform=platform),
            CoScaleRedistProjection(platform=platform),
        )

    def test_savings_positive_for_compute_bound(self, projections):
        memscale, _ = projections
        assert memscale.estimate_power_savings(spec_workload("416.gamess")) > 0

    def test_savings_smaller_for_memory_bound(self, projections):
        memscale, _ = projections
        assert memscale.estimate_power_savings(
            spec_workload("470.lbm")
        ) < memscale.estimate_power_savings(spec_workload("416.gamess"))

    def test_coscale_exceeds_memscale_on_cpu_workloads(self, projections):
        memscale, coscale = projections
        trace = spec_workload("473.astar")
        assert coscale.estimate_power_savings(trace) > memscale.estimate_power_savings(trace)

    def test_coscale_equals_memscale_on_graphics(self, projections):
        memscale, coscale = projections
        trace = graphics_workload("3DMark06")
        assert coscale.project(trace).performance_improvement == pytest.approx(
            memscale.project(trace).performance_improvement, rel=0.05
        )

    def test_coscale_equals_memscale_on_battery_life(self, projections):
        memscale, coscale = projections
        trace = battery_life_workload("video_playback")
        assert coscale.project(trace, baseline_average_power=0.7).power_reduction == pytest.approx(
            memscale.project(trace, baseline_average_power=0.7).power_reduction, rel=0.05
        )

    def test_projection_improvement_is_modest(self, projections):
        memscale, coscale = projections
        for trace in (spec_workload("416.gamess"), spec_workload("400.perlbench")):
            assert 0.0 <= memscale.project(trace).performance_improvement < 0.10
            assert 0.0 <= coscale.project(trace).performance_improvement < 0.12

    def test_battery_projection_reports_power_not_performance(self, projections):
        memscale, _ = projections
        result = memscale.project(battery_life_workload("web_browsing"), baseline_average_power=1.2)
        assert result.performance_improvement == 0.0
        assert result.power_reduction > 0.0

    def test_result_as_dict(self, projections):
        memscale, _ = projections
        data = memscale.project(spec_workload("416.gamess")).as_dict()
        for key in ("workload", "technique", "power_savings_w", "performance_improvement"):
            assert key in data
