"""Smoke test: every experiment module's entry function runs through the runtime.

Guards against future experiment-module breakage: each ``repro.experiments``
module must expose at least one ``run_*`` entry function, and every entry must
complete -- with a tiny :class:`SimulationConfig` and reduced workload sets --
against a context whose runtime is the real (serial) executor.  The point is
coverage of the wiring, not of the numbers: shape assertions live in
``tests/test_experiments.py`` and ``benchmarks/``.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro.experiments
from repro.experiments import build_context
from repro.experiments.report import ExperimentReport
from repro.sim.engine import SimulationConfig
from repro.workloads.trace import WorkloadClass

#: Modules that are plumbing, not experiments.
NON_EXPERIMENT_MODULES = {"runner", "report", "api"}

#: Tiny per-entry keyword overrides so the full sweep finishes in seconds.
TINY_KWARGS = {
    "run_fig6_prediction": {
        "workloads_per_class": {
            WorkloadClass.CPU_SINGLE_THREAD: 4,
            WorkloadClass.CPU_MULTI_THREAD: 3,
            WorkloadClass.GRAPHICS: 3,
        }
    },
    "run_fig7_spec": {"subset": ("470.lbm", "416.gamess")},
    "run_fig10_tdp_sensitivity": {
        "tdp_points": (4.5,),
        "subset": ("470.lbm",),
        "workload_duration": 0.05,
        "sim_config": SimulationConfig(max_simulated_time=0.05),
    },
    "run_dram_frequency_sensitivity": {"corpus_size": 4},
    "run_scenario_robustness": {
        "subset": ("bursty-heavy", "thrash-sustained", "idle-mostly")
    },
}


def _experiment_modules():
    for info in pkgutil.iter_modules(repro.experiments.__path__):
        if info.name not in NON_EXPERIMENT_MODULES and not info.name.startswith("_"):
            yield info.name


def _entry_functions(module):
    return [
        obj
        for name, obj in vars(module).items()
        if name.startswith("run_")
        and inspect.isfunction(obj)
        and obj.__module__ == module.__name__
    ]


@pytest.fixture(scope="module")
def tiny_context():
    return build_context(
        workload_duration=0.05,
        sim_config=SimulationConfig(max_simulated_time=0.05),
    )


def test_every_module_has_an_entry_function():
    modules = list(_experiment_modules())
    assert len(modules) >= 12
    for module_name in modules:
        module = importlib.import_module(f"repro.experiments.{module_name}")
        assert _entry_functions(module), f"{module_name} has no run_* entry"


@pytest.mark.parametrize("module_name", sorted(_experiment_modules()))
def test_entry_functions_run_through_the_runtime(module_name, tiny_context):
    module = importlib.import_module(f"repro.experiments.{module_name}")
    for entry in _entry_functions(module):
        kwargs = dict(TINY_KWARGS.get(entry.__name__, {}))
        parameters = inspect.signature(entry).parameters
        if "context" in parameters:
            kwargs["context"] = tiny_context
        if "runtime" in parameters:
            kwargs.setdefault("runtime", tiny_context.runtime)
        result = entry(**kwargs)
        assert isinstance(result, ExperimentReport), entry.__name__
        assert result.blocks, entry.__name__
        # The legacy mapping view over the report stays non-empty too.
        assert dict(result.items()), entry.__name__
