"""Scenario synthesis: generators, composition operators, Markov models, registry."""

import numpy as np
import pytest

from repro import config
from repro.scenarios import (
    GENERATORS,
    MARKOV_MODELS,
    SCENARIOS,
    PhaseMarkovModel,
    ScenarioSpec,
    build_scenario_trace,
    catalog_trace_specs,
)
from repro.scenarios import compose
from repro.scenarios.generators import CEILING_GBPS, bursty, idle_heavy, make_phase, ramp
from repro.scenarios.markov import MarkovState
from repro.workloads.trace import Phase, WorkloadClass


def rng(seed: int = 7) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_every_generator_emits_valid_phases(self, name):
        phases = GENERATORS[name].fn(rng())
        assert phases, f"generator {name} emitted no phases"
        for phase in phases:
            # Phase.__post_init__ enforces the invariants; re-check the key ones.
            assert phase.duration > 0
            assert abs(sum(phase.fraction_vector()) - 1.0) < 1e-6
            assert phase.memory_bandwidth_demand >= 0

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_same_seed_is_bit_identical(self, name):
        fn = GENERATORS[name].fn
        assert fn(rng(42)) == fn(rng(42))

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_different_seeds_differ(self, name):
        fn = GENERATORS[name].fn
        assert fn(rng(1)) != fn(rng(2))

    def test_bursty_duration_and_demand(self):
        phases = bursty(rng(), duration=2.0, segments=4, burst_gbps=18.0)
        assert sum(p.duration for p in phases) == pytest.approx(2.0)
        peak = max(p.memory_bandwidth_demand for p in phases)
        assert peak > config.gbps(10.0)

    def test_ramp_is_monotonic_in_expectation(self):
        phases = ramp(rng(), start_gbps=1.0, end_gbps=18.0, steps=6)
        demands = [p.memory_bandwidth_demand for p in phases]
        assert demands[-1] > demands[0] * 5

    def test_idle_heavy_has_deep_idle_residency(self):
        phases = idle_heavy(rng())
        from repro.power.cstates import CState

        deep = [p for p in phases if p.residency.fraction(CState.C8) > 0.5]
        assert deep, "idle-heavy scenario has no deep-idle phases"

    def test_invalid_parameters_fail_loudly(self):
        with pytest.raises(ValueError):
            bursty(rng(), duration=-1.0)
        with pytest.raises(ValueError):
            bursty(rng(), burst_fraction=1.5)
        with pytest.raises(ValueError):
            ramp(rng(), steps=1)
        with pytest.raises(ValueError):
            bursty(rng(), duration=0.01, segments=50)

    def test_make_phase_scales_overweight_fractions(self):
        phase = make_phase("x", 0.1, compute=0.9, memory_bandwidth=0.9)
        assert abs(sum(phase.fraction_vector()) - 1.0) < 1e-9
        assert phase.other_fraction > 0


class TestCompose:
    def phases(self, seed=3):
        return bursty(rng(seed), segments=2)

    def test_concat_preserves_order_and_duration(self):
        a, b = self.phases(1), self.phases(2)
        joined = compose.concat(a, b)
        assert list(joined) == list(a) + list(b)

    def test_repeat_renames_and_multiplies_duration(self):
        a = self.phases()
        tripled = compose.repeat(a, 3)
        assert len(tripled) == 3 * len(a)
        assert sum(p.duration for p in tripled) == pytest.approx(
            3 * sum(p.duration for p in a)
        )
        assert len({p.name for p in tripled}) == len(tripled)

    def test_scale_duration(self):
        a = self.phases()
        halved = compose.scale_duration(a, 0.5)
        assert sum(p.duration for p in halved) == pytest.approx(
            0.5 * sum(p.duration for p in a)
        )
        with pytest.raises(ValueError):
            compose.scale_duration(a, 0.0)

    def test_interleave_round_robin(self):
        a, b = self.phases(1), self.phases(2)
        woven = compose.interleave(a, b)
        assert len(woven) == len(a) + len(b)
        assert woven[0] == a[0] and woven[1] == b[0]
        with pytest.raises(ValueError):
            compose.interleave(a)

    def test_mix_blends_fractions_and_demands(self):
        a, b = self.phases(1), self.phases(2)
        total = min(sum(p.duration for p in a), sum(p.duration for p in b))
        mixed = compose.mix(a, b, weight=0.5)
        assert sum(p.duration for p in mixed) == pytest.approx(total)
        for phase in mixed:
            assert abs(sum(phase.fraction_vector()) - 1.0) < 1e-9

    def test_mix_weight_one_reduces_to_a(self):
        a, b = self.phases(1), self.phases(2)
        mixed = compose.mix(a, b, weight=1.0)
        sample = mixed[0]
        assert sample.cpu_bandwidth_demand == pytest.approx(a[0].cpu_bandwidth_demand)
        assert sample.compute_fraction == pytest.approx(a[0].compute_fraction)

    def test_mix_rejects_bad_weight(self):
        a, b = self.phases(1), self.phases(2)
        with pytest.raises(ValueError):
            compose.mix(a, b, weight=1.5)

    def test_empty_sequences_rejected(self):
        with pytest.raises(ValueError):
            compose.concat([])
        with pytest.raises(ValueError):
            compose.repeat([], 2)


class TestMarkov:
    def test_models_are_row_stochastic_by_construction(self):
        for model in MARKOV_MODELS.values():
            for row in model.transitions:
                assert sum(row) == pytest.approx(1.0)

    def test_generate_covers_duration_deterministically(self):
        model = MARKOV_MODELS["mobile_day"]
        phases = model.generate(rng(5), duration=3.0)
        assert sum(p.duration for p in phases) == pytest.approx(3.0)
        assert phases == model.generate(rng(5), duration=3.0)
        assert phases != model.generate(rng(6), duration=3.0)

    def test_generate_visits_multiple_states(self):
        phases = MARKOV_MODELS["mobile_day"].generate(rng(5), duration=5.0)
        stems = {p.name.rsplit("_", 1)[0] for p in phases}
        assert len(stems) >= 3

    def test_invalid_model_rejected(self):
        state = MarkovState("only", mean_dwell=0.1, compute=0.5)
        with pytest.raises(ValueError):
            PhaseMarkovModel(name="bad", states=(state,), transitions=((0.5,),))
        with pytest.raises(ValueError):
            PhaseMarkovModel(
                name="bad", states=(state,), transitions=((1.0,),), initial=(0.4,)
            )

    def test_unknown_model_name(self):
        with pytest.raises(KeyError):
            GENERATORS["markov"].fn(rng(), model="nope")


class TestRegistry:
    def test_catalog_size_and_coverage(self):
        assert len(SCENARIOS) >= 20
        used = {spec.generator for spec in SCENARIOS.values()}
        assert used == set(GENERATORS), "catalog does not exercise every generator"

    def test_every_scenario_builds_a_valid_trace(self):
        for name, spec in SCENARIOS.items():
            trace = spec.build()
            assert trace.name == f"scenario:{name}"
            assert trace.total_duration > 0
            assert trace.workload_class is GENERATORS[spec.generator].workload_class

    def test_build_is_deterministic(self):
        spec = SCENARIOS["markov-mobile-day"]
        assert spec.build() == spec.build()

    def test_content_hash_differs_across_catalog(self):
        hashes = {spec.content_hash for spec in SCENARIOS.values()}
        assert len(hashes) == len(SCENARIOS)

    def test_seed_changes_hash_and_trace(self):
        base = ScenarioSpec.make("x", "bursty", seed=1)
        other = ScenarioSpec.make("x", "bursty", seed=2)
        assert base.content_hash != other.content_hash
        assert base.build() != other.build()

    def test_round_trip(self):
        spec = SCENARIOS["gfx-plus-stream"]
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.content_hash == spec.content_hash

    def test_description_does_not_change_hash(self):
        a = ScenarioSpec.make("x", "bursty", seed=1, description="one")
        b = ScenarioSpec.make("x", "bursty", seed=1, description="two")
        assert a.content_hash == b.content_hash

    def test_unknown_generator_rejected(self):
        with pytest.raises(KeyError):
            ScenarioSpec.make("x", "not_a_generator")

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec.make("x", "bursty", seed=-1)

    def test_build_scenario_trace_matches_spec_build(self):
        spec = SCENARIOS["ramp-up"]
        direct = build_scenario_trace(
            name=spec.name, generator=spec.generator, seed=spec.seed,
            **{key: value for key, value in spec.params},
        )
        assert direct == spec.build()

    def test_catalog_trace_specs_rejects_unknown_names(self):
        with pytest.raises(KeyError):
            catalog_trace_specs(["no-such-scenario"])
