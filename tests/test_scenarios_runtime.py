"""Scenarios through the runtime: determinism, caching, campaign, CLI."""

import pytest

from repro.runtime.cache import ResultCache
from repro.runtime.campaign import QUICK_SCENARIO_SUBSET, scenario_campaign
from repro.runtime.cli import main
from repro.runtime.executor import ParallelExecutor, SerialExecutor
from repro.runtime.jobs import (
    PolicySpec,
    SimSpec,
    SimulationJob,
    TraceSpec,
    job_from_dict,
)
from repro.scenarios.registry import SCENARIOS

#: Short engine cap so every simulation in this module is a smoke run.
SMOKE_SIM = SimSpec(max_simulated_time=0.06)


def scenario_job(name: str, policy: str = "sysscale") -> SimulationJob:
    return SimulationJob(
        trace=SCENARIOS[name].trace_spec(),
        policy=PolicySpec.make(policy),
        sim=SMOKE_SIM,
    )


class TestScenarioJobs:
    def test_trace_spec_uses_scenario_builder(self):
        spec = SCENARIOS["bursty-light"].trace_spec()
        assert spec.builder == "scenario"
        assert spec.label == "bursty-light"
        assert spec.build() == SCENARIOS["bursty-light"].build()

    def test_job_round_trips_through_dict(self):
        job = scenario_job("markov-office")
        rebuilt = job_from_dict(job.to_dict())
        assert rebuilt == job
        assert rebuilt.content_hash == job.content_hash

    def test_same_spec_same_hash_different_seed_different_hash(self):
        job_a = scenario_job("ramp-up")
        job_b = scenario_job("ramp-up")
        assert job_a.content_hash == job_b.content_hash
        reseeded = SimulationJob(
            trace=TraceSpec.make(
                "scenario", name="ramp-up", generator="ramp", seed=999,
            ),
            policy=PolicySpec.make("sysscale"),
            sim=SMOKE_SIM,
        )
        assert reseeded.content_hash != job_a.content_hash


class TestScenarioDeterminism:
    def test_serial_parallel_and_cache_are_bit_identical(self, tmp_path):
        """Acceptance: one ScenarioSpec -> identical content hash and
        bit-identical SimulationResult across serial, parallel, and
        warm-cache execution."""
        jobs = [scenario_job("bursty-heavy"), scenario_job("idle-mostly")]

        serial = SerialExecutor().run(jobs).payloads()
        parallel = ParallelExecutor(max_workers=2).run(jobs).payloads()
        assert serial == parallel

        cache = ResultCache(tmp_path / "cache")
        cold = SerialExecutor().run(jobs, cache=cache)
        assert cold.executed == 2
        warm = SerialExecutor().run(jobs, cache=cache)
        assert warm.executed == 0 and warm.cache_hits == 2
        assert warm.payloads() == serial

    def test_duplicate_scenario_jobs_dedupe(self):
        job = scenario_job("periodic-fast")
        report = SerialExecutor().run([job, job, job])
        assert report.unique_jobs == 1
        assert report.executed == 1
        assert report.payloads()[0] == report.payloads()[2]


class TestScenarioCampaign:
    def test_full_campaign_meets_acceptance_grid(self):
        campaign = scenario_campaign()
        scenarios = {job.trace.label for job in campaign.jobs}
        policies = {job.policy.builder for job in campaign.jobs}
        assert len(scenarios) >= 20
        assert len(policies) >= 2
        assert len(campaign.jobs) == len(scenarios) * len(policies)

    def test_quick_campaign_is_a_subset(self):
        campaign = scenario_campaign(quick=True)
        assert {job.trace.label for job in campaign.jobs} == set(QUICK_SCENARIO_SUBSET)

    def test_custom_policies_and_names(self):
        campaign = scenario_campaign(
            names=("ramp-up", "ramp-down"),
            policies=(PolicySpec.make("baseline"),),
        )
        assert len(campaign.jobs) == 2

    def test_unknown_scenario_name_rejected(self):
        with pytest.raises(KeyError):
            scenario_campaign(names=("nope",))


class TestScenariosCli:
    def test_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        output = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in output

    def test_list_json(self, capsys):
        import json

        assert main(["scenarios", "list", "--json"]) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert set(decoded) == set(SCENARIOS)

    def test_describe(self, capsys):
        assert main(["scenarios", "describe", "markov-mobile-day"]) == 0
        output = capsys.readouterr().out
        assert "content hash" in output
        assert "markov" in output

    def test_describe_unknown(self, capsys):
        assert main(["scenarios", "describe", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_sweep_unknown_policy(self, capsys):
        assert main(["scenarios", "sweep", "--policies", "nope", "--no-cache"]) == 2
        assert "unknown polic" in capsys.readouterr().err

    def test_sweep_warm_cache_reproduces_numbers(self, tmp_path, capsys):
        """Acceptance: a second warm-cache sweep simulates nothing and
        reproduces bit-identical numbers."""
        args = [
            "scenarios", "sweep", "--quick", "--max-time", "0.05",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "cache hit(s)" in cold

        assert main(args) == 0
        warm = capsys.readouterr().out
        assert ", 0 simulated" in warm

        def numbers(output):
            return [
                line for line in output.splitlines()
                if line.lstrip().startswith(tuple(SCENARIOS))
            ]

        assert numbers(cold) == numbers(warm)
        assert numbers(cold), "sweep printed no per-scenario rows"
