"""Tests for the global configuration constants and unit helpers."""

import pytest

from repro import config


class TestUnitHelpers:
    def test_ghz_conversion(self):
        assert config.ghz(1.6) == pytest.approx(1.6e9)

    def test_mhz_conversion(self):
        assert config.mhz(300) == pytest.approx(3.0e8)

    def test_gbps_conversion(self):
        assert config.gbps(25.6) == pytest.approx(25.6e9)

    def test_ms_conversion(self):
        assert config.ms(30) == pytest.approx(0.03)

    def test_us_conversion(self):
        assert config.us(10) == pytest.approx(1e-5)


class TestPaperAnchoredConstants:
    def test_lpddr3_bins_match_footnote_4(self):
        bins = [f / config.GHZ for f in config.LPDDR3_FREQUENCY_BINS]
        assert bins == pytest.approx([1.6, 1.06, 0.8])

    def test_lpddr3_peak_bandwidth(self):
        assert config.LPDDR3_PEAK_BANDWIDTH == pytest.approx(25.6e9)

    def test_mc_runs_at_half_ddr_frequency(self):
        assert config.MC_TO_DDR_FREQUENCY_RATIO == 0.5

    def test_interconnect_frequencies_match_table1(self):
        assert config.IO_INTERCONNECT_HIGH_FREQUENCY == pytest.approx(0.8e9)
        assert config.IO_INTERCONNECT_LOW_FREQUENCY == pytest.approx(0.4e9)

    def test_voltage_scales_match_table1(self):
        assert config.V_SA_LOW_SCALE == pytest.approx(0.8)
        assert config.V_IO_LOW_SCALE == pytest.approx(0.85)

    def test_skylake_table2_parameters(self):
        assert config.SKYLAKE_CPU_BASE_FREQUENCY == pytest.approx(1.2e9)
        assert config.SKYLAKE_GFX_BASE_FREQUENCY == pytest.approx(300e6)
        assert config.SKYLAKE_LLC_BYTES == 4 * 1024 * 1024
        assert config.SKYLAKE_DEFAULT_TDP == pytest.approx(4.5)
        assert config.SKYLAKE_CORE_COUNT == 2

    def test_transition_budget_is_10_microseconds(self):
        assert config.TRANSITION_TOTAL_LATENCY_BUDGET == pytest.approx(10e-6)

    def test_transition_component_budgets_fit_total(self):
        components = (
            config.TRANSITION_VOLTAGE_LATENCY
            + config.TRANSITION_DRAIN_LATENCY
            + config.TRANSITION_SELF_REFRESH_EXIT_LATENCY
            + config.TRANSITION_MRC_LOAD_LATENCY
            + config.TRANSITION_FIRMWARE_LATENCY
        )
        assert components <= config.TRANSITION_TOTAL_LATENCY_BUDGET + 1e-12

    def test_mrc_sram_budget_is_half_kilobyte(self):
        assert config.MRC_SRAM_BYTES == 512

    def test_evaluation_interval_default_is_30ms(self):
        assert config.EVALUATION_INTERVAL == pytest.approx(0.03)

    def test_sampling_interval_is_1ms(self):
        assert config.COUNTER_SAMPLING_INTERVAL == pytest.approx(0.001)

    def test_prediction_bound_is_one_percent(self):
        assert config.PREDICTION_DEGRADATION_BOUND == pytest.approx(0.01)

    def test_vr_slew_rate_is_50mv_per_us(self):
        assert config.VR_SLEW_RATE == pytest.approx(0.05 / 1e-6)


class TestCalibrationConstants:
    def test_power_constants_are_positive(self):
        for name in (
            "CPU_CORE_CEFF",
            "GFX_CEFF",
            "UNCORE_CEFF",
            "CPU_CORE_LEAKAGE_COEFF",
            "V_SA_MC_POWER_HIGH",
            "V_SA_INTERCONNECT_POWER_HIGH",
            "DDRIO_DIGITAL_POWER_HIGH",
            "DRAM_BACKGROUND_POWER_HIGH",
            "PLATFORM_FIXED_POWER",
        ):
            assert getattr(config, name) > 0, name

    def test_c_state_power_ordering(self):
        assert (
            config.PACKAGE_C2_POWER
            > config.PACKAGE_C6_POWER
            > config.PACKAGE_C7_POWER
            > config.PACKAGE_C8_POWER
        )
