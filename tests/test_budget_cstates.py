"""Tests for the power budget manager, P-state selection, C-states, and metrics."""

import pytest

from repro import config
from repro.power.budget import PowerBudgetManager
from repro.power.cstates import CState, CStateResidency, HardwareDutyCycling
from repro.power.energy import EnergyMetrics, energy_delay_product
from repro.power.models import ActivityVector
from repro.power.pstates import max_pstate_within_budget, build_cpu_pstates


class TestBudgets:
    def test_baseline_reserves_worst_case(self, platform):
        budgets = platform.pbm.budgets(None)
        assert budgets.io_memory == pytest.approx(platform.worst_case_io_memory_power())
        assert budgets.compute < platform.tdp

    def test_smaller_allocation_gives_more_compute(self, platform):
        small = platform.pbm.budgets(0.8)
        large = platform.pbm.budgets(1.8)
        assert small.compute > large.compute

    def test_allocation_never_negative(self, platform):
        budgets = platform.pbm.budgets(platform.tdp * 2)
        assert budgets.compute == 0.0

    def test_redistribution(self, platform):
        saved = 0.5
        redistributed = platform.pbm.redistributed_budget(saved)
        baseline = platform.pbm.budgets(None)
        assert redistributed.compute == pytest.approx(baseline.compute + saved)

    def test_negative_allocation_rejected(self, platform):
        with pytest.raises(ValueError):
            platform.pbm.budgets(-1.0)


class TestComputePlanning:
    def test_more_budget_means_higher_cpu_frequency(self, platform):
        activity = ActivityVector(cpu_activity=0.95, memory_bandwidth=2e9)
        small = platform.pbm.plan_cpu_centric(2.0, activity)
        large = platform.pbm.plan_cpu_centric(3.2, activity)
        assert large.cpu_state.frequency > small.cpu_state.frequency

    def test_graphics_plan_parks_cpu_at_pn(self, platform):
        activity = ActivityVector(cpu_activity=0.45, gfx_activity=0.95, memory_bandwidth=5e9)
        plan = platform.pbm.plan_graphics_centric(2.5, activity)
        assert plan.cpu_state.frequency == platform.soc.cpu_pstates.pn.frequency

    def test_graphics_plan_boosts_gfx_with_budget(self, platform):
        activity = ActivityVector(cpu_activity=0.45, gfx_activity=0.95, memory_bandwidth=5e9)
        small = platform.pbm.plan_graphics_centric(2.0, activity)
        large = platform.pbm.plan_graphics_centric(3.2, activity)
        assert large.gfx_state.frequency > small.gfx_state.frequency

    def test_fixed_performance_plan_uses_floors(self, platform):
        plan = platform.pbm.plan_fixed_performance()
        assert plan.cpu_state.frequency == platform.soc.cpu_pstates.pn.frequency
        assert plan.gfx_state.frequency == platform.soc.gfx_pstates.min_state.frequency

    def test_max_pstate_within_budget_monotone(self):
        table = build_cpu_pstates()
        power = lambda state: state.frequency * 1e-9  # noqa: E731 - simple stub
        low = max_pstate_within_budget(table, power, 1.0)
        high = max_pstate_within_budget(table, power, 2.0)
        assert high.frequency >= low.frequency

    def test_demote_request(self, platform):
        table = platform.soc.cpu_pstates
        requested = table.max_state
        power = lambda state: state.frequency * 2e-9  # noqa: E731
        granted, demoted = platform.pbm.demote_request(requested, table, power, budget=2.0)
        assert demoted
        assert granted.frequency < requested.frequency


class TestCStates:
    def test_residencies_must_sum_to_one(self):
        with pytest.raises(ValueError):
            CStateResidency({CState.C0: 0.5, CState.C8: 0.4})

    def test_video_playback_profile_matches_paper(self):
        profile = CStateResidency.video_playback()
        assert profile.fraction(CState.C0) == pytest.approx(0.10)
        assert profile.fraction(CState.C2) == pytest.approx(0.05)
        assert profile.fraction(CState.C8) == pytest.approx(0.85)
        assert profile.dram_active_fraction == pytest.approx(0.15)

    def test_active_only_profile(self):
        profile = CStateResidency.active_only()
        assert profile.active_fraction == 1.0
        assert profile.idle_package_power() == 0.0

    def test_scaled_active_preserves_proportions(self):
        profile = CStateResidency.video_playback()
        scaled = profile.scaled_active(0.2)
        assert scaled.active_fraction == pytest.approx(0.2)
        assert scaled.fraction(CState.C8) / scaled.fraction(CState.C2) == pytest.approx(
            profile.fraction(CState.C8) / profile.fraction(CState.C2)
        )

    def test_hdc_reduces_effective_frequency(self):
        hdc = HardwareDutyCycling(duty_cycle=0.5)
        assert hdc.effective_frequency(1.2e9) == pytest.approx(0.6e9)
        assert hdc.average_power(2.0, 0.2) == pytest.approx(1.1)

    def test_hdc_validation(self):
        with pytest.raises(ValueError):
            HardwareDutyCycling(duty_cycle=0.0)


class TestEnergyMetrics:
    def test_average_power_and_edp(self):
        metrics = EnergyMetrics(energy_joules=10.0, execution_time_seconds=2.0)
        assert metrics.average_power == pytest.approx(5.0)
        assert metrics.edp == pytest.approx(20.0)

    def test_comparisons(self):
        baseline = EnergyMetrics(energy_joules=10.0, execution_time_seconds=2.0)
        better = EnergyMetrics(energy_joules=9.0, execution_time_seconds=1.8)
        assert better.performance_improvement_over(baseline) == pytest.approx(2.0 / 1.8 - 1)
        assert better.power_reduction_vs(baseline) == pytest.approx(0.0)
        assert better.energy_reduction_vs(baseline) == pytest.approx(0.1)
        assert better.edp_improvement_over(baseline) > 0

    def test_edp_helper_validation(self):
        with pytest.raises(ValueError):
            energy_delay_product(-1.0, 1.0)

    def test_invalid_metrics_rejected(self):
        with pytest.raises(ValueError):
            EnergyMetrics(energy_joules=1.0, execution_time_seconds=0.0)
