"""Tests for the platform assembly and the trace-driven simulation engine."""

import pytest

from repro import config
from repro.baselines.fixed import FixedBaselinePolicy
from repro.baselines.md_dvfs import StaticMdDvfsPolicy
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.platform import build_platform
from repro.sim.policy import PolicyAction
from repro.workloads.batterylife import battery_life_workload
from repro.workloads.io_devices import STANDARD_CONFIGURATIONS
from repro.workloads.microbenchmarks import compute_only_microbenchmark
from repro.workloads.spec2006 import spec_workload


class TestPlatform:
    def test_build_platform_defaults(self, platform):
        assert platform.tdp == pytest.approx(4.5)
        assert platform.dram.max_frequency == pytest.approx(1.6e9)

    def test_worst_case_reservation_exceeds_typical(self, platform):
        worst = platform.worst_case_io_memory_power()
        typical = platform.io_memory_power_at(
            dram_frequency=1.6e9, interconnect_frequency=0.8e9,
            v_sa_scale=1.0, v_io_scale=1.0, bandwidth=3e9, io_activity=0.3,
        )
        assert worst > typical

    def test_low_point_provisioning_frees_budget(self, platform):
        high = platform.worst_case_io_memory_power()
        low = platform.worst_case_io_memory_power(
            dram_frequency=1.06e9, interconnect_frequency=0.4e9,
            v_sa_scale=0.8, v_io_scale=0.85,
        )
        assert 0.3 < high - low < 1.2

    def test_compute_budget_monotone_in_tdp(self):
        small = build_platform(tdp=3.5)
        large = build_platform(tdp=7.0)
        assert large.compute_budget(1.5) > small.compute_budget(1.5)

    def test_describe(self, platform):
        summary = platform.describe()
        assert "worst_case_io_memory_power_w" in summary


class TestSimulationConfig:
    def test_defaults_match_paper(self):
        sim_config = SimulationConfig()
        assert sim_config.tick == pytest.approx(config.COUNTER_SAMPLING_INTERVAL)
        assert sim_config.evaluation_interval == pytest.approx(config.EVALUATION_INTERVAL)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(tick=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(tick=0.01, evaluation_interval=0.001)


class TestEngineBasics:
    def test_baseline_run_produces_sensible_result(self, engine):
        trace = spec_workload("416.gamess", duration=0.3)
        result = engine.run(trace, FixedBaselinePolicy())
        assert result.execution_time > 0
        assert 1.0 < result.average_power < engine.platform.tdp + 1.0
        assert result.energy.total == pytest.approx(
            result.average_power * result.execution_time
        )

    def test_baseline_never_transitions(self, engine):
        trace = spec_workload("473.astar", duration=0.3)
        result = engine.run(trace, FixedBaselinePolicy())
        assert result.transitions == 0
        assert result.low_point_residency == 0.0

    def test_faster_compute_shortens_compute_bound_runs(self, engine):
        trace = compute_only_microbenchmark(duration=0.3)
        baseline = engine.run(trace, FixedBaselinePolicy())
        assert baseline.execution_time < trace.total_duration

    def test_md_dvfs_reduces_power(self, engine):
        trace = spec_workload("400.perlbench", duration=0.3)
        baseline = engine.run(trace, FixedBaselinePolicy())
        md = engine.run(trace, StaticMdDvfsPolicy())
        assert md.average_power < baseline.average_power
        assert md.low_point_residency == pytest.approx(1.0)

    def test_md_dvfs_hurts_memory_bound_performance(self, engine):
        trace = spec_workload("470.lbm", duration=0.3)
        baseline = engine.run(trace, FixedBaselinePolicy())
        md = engine.run(trace, StaticMdDvfsPolicy())
        assert md.performance_improvement_over(baseline) < -0.05

    def test_battery_life_run_has_fixed_duration(self, engine):
        trace = battery_life_workload("video_playback", cycles=1)
        result = engine.run(trace, FixedBaselinePolicy(),
                            peripherals=STANDARD_CONFIGURATIONS["single_hd"])
        assert result.execution_time == pytest.approx(trace.total_duration, rel=0.02)

    def test_battery_life_power_is_low(self, engine):
        trace = battery_life_workload("video_playback", cycles=1)
        result = engine.run(trace, FixedBaselinePolicy(),
                            peripherals=STANDARD_CONFIGURATIONS["single_hd"])
        assert 0.3 < result.average_power < 1.5

    def test_max_simulated_time_cap(self, platform):
        engine = SimulationEngine(platform, SimulationConfig(max_simulated_time=0.05))
        trace = spec_workload("470.lbm", duration=10.0)
        result = engine.run(trace, FixedBaselinePolicy())
        assert result.execution_time <= 0.06

    def test_result_as_dict(self, engine):
        trace = spec_workload("416.gamess", duration=0.2)
        data = engine.run(trace, FixedBaselinePolicy()).as_dict()
        for key in ("workload", "policy", "time_s", "average_power_w", "energy_j"):
            assert key in data


class TestPolicyAction:
    def test_same_operating_point(self):
        action = PolicyAction(
            name="a", dram_frequency=1.6e9, interconnect_frequency=0.8e9,
            v_sa_scale=1.0, v_io_scale=1.0, mrc_optimized=True, io_memory_budget=1.5,
        )
        same = PolicyAction(
            name="b", dram_frequency=1.6e9, interconnect_frequency=0.8e9,
            v_sa_scale=1.0, v_io_scale=1.0, mrc_optimized=True, io_memory_budget=2.0,
        )
        different = PolicyAction(
            name="c", dram_frequency=1.06e9, interconnect_frequency=0.4e9,
            v_sa_scale=0.8, v_io_scale=0.85, mrc_optimized=True, io_memory_budget=1.0,
        )
        assert action.same_operating_point(same)
        assert not action.same_operating_point(different)
        assert not action.same_operating_point(None)

    def test_validation(self):
        with pytest.raises(ValueError):
            PolicyAction(
                name="bad", dram_frequency=-1.0, interconnect_frequency=0.8e9,
                v_sa_scale=1.0, v_io_scale=1.0, mrc_optimized=True, io_memory_budget=1.0,
            )
