"""Tests for voltage regulators and the shared-rail structure."""

import pytest

from repro import config
from repro.soc.vr import (
    RailName,
    RailSet,
    VoltageRegulator,
    VoltageRegulatorError,
    build_default_rails,
)


@pytest.fixture
def v_sa():
    return VoltageRegulator(rail=RailName.V_SA, nominal_voltage=0.55, min_voltage=0.44)


class TestVoltageRegulator:
    def test_starts_at_nominal(self, v_sa):
        assert v_sa.current_voltage == pytest.approx(0.55)
        assert v_sa.scale == pytest.approx(1.0)

    def test_transition_time_uses_slew_rate(self, v_sa):
        duration = v_sa.transition_time(0.44)
        assert duration == pytest.approx(0.11 / config.VR_SLEW_RATE)

    def test_set_voltage_moves_rail(self, v_sa):
        v_sa.set_voltage(0.44)
        assert v_sa.current_voltage == pytest.approx(0.44)
        assert v_sa.scale == pytest.approx(0.8)

    def test_set_scale(self, v_sa):
        v_sa.set_scale(0.8)
        assert v_sa.current_voltage == pytest.approx(0.44)

    def test_below_min_voltage_rejected(self, v_sa):
        with pytest.raises(VoltageRegulatorError):
            v_sa.set_voltage(0.3)

    def test_overvoltage_rejected(self, v_sa):
        with pytest.raises(VoltageRegulatorError):
            v_sa.set_voltage(0.9)

    def test_vddq_is_not_scalable(self):
        vddq = VoltageRegulator(
            rail=RailName.VDDQ, nominal_voltage=1.2, min_voltage=1.2, scalable=False
        )
        with pytest.raises(VoltageRegulatorError):
            vddq.set_voltage(1.0)

    def test_reset_restores_nominal(self, v_sa):
        v_sa.set_scale(0.8)
        v_sa.reset()
        assert v_sa.current_voltage == pytest.approx(0.55)

    def test_invalid_construction(self):
        with pytest.raises(VoltageRegulatorError):
            VoltageRegulator(rail=RailName.V_SA, nominal_voltage=0.0, min_voltage=0.0)
        with pytest.raises(VoltageRegulatorError):
            VoltageRegulator(rail=RailName.V_SA, nominal_voltage=0.5, min_voltage=0.6)


class TestRailSet:
    def test_default_rails_contain_all_five(self):
        rails = build_default_rails()
        for rail in RailName:
            assert rail in rails

    def test_duplicate_rail_rejected(self):
        rails = RailSet()
        rails.add(VoltageRegulator(rail=RailName.V_SA, nominal_voltage=0.55, min_voltage=0.44))
        with pytest.raises(VoltageRegulatorError):
            rails.add(
                VoltageRegulator(rail=RailName.V_SA, nominal_voltage=0.55, min_voltage=0.44)
            )

    def test_parallel_transition_pays_slowest_rail(self):
        rails = build_default_rails()
        targets = {
            RailName.V_SA: rails[RailName.V_SA].nominal_voltage * 0.8,
            RailName.V_IO: rails[RailName.V_IO].nominal_voltage * 0.85,
        }
        expected = max(
            rails[RailName.V_SA].transition_time(targets[RailName.V_SA]),
            rails[RailName.V_IO].transition_time(targets[RailName.V_IO]),
        )
        assert rails.max_transition_time(targets) == pytest.approx(expected)

    def test_apply_moves_all_rails(self):
        rails = build_default_rails()
        targets = {
            RailName.V_SA: rails[RailName.V_SA].nominal_voltage * 0.8,
            RailName.V_IO: rails[RailName.V_IO].nominal_voltage * 0.85,
        }
        rails.apply(targets)
        assert rails.scale(RailName.V_SA) == pytest.approx(0.8)
        assert rails.scale(RailName.V_IO) == pytest.approx(0.85)

    def test_default_swing_fits_2us_budget(self):
        """Sec. 5 budgets ~2 us of voltage slewing for a ~100 mV swing."""
        rails = build_default_rails()
        targets = {
            RailName.V_SA: rails[RailName.V_SA].nominal_voltage * config.V_SA_LOW_SCALE,
            RailName.V_IO: rails[RailName.V_IO].nominal_voltage * config.V_IO_LOW_SCALE,
        }
        assert rails.max_transition_time(targets) <= 2.5e-6

    def test_reset(self):
        rails = build_default_rails()
        rails[RailName.V_SA].set_scale(0.8)
        rails.reset()
        assert rails.scale(RailName.V_SA) == pytest.approx(1.0)
