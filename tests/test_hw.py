"""The repro.hw layer: specs, registry, derivation, and platform parity."""

import json

import pytest

from repro import config
from repro.hw import (
    DRAM_SPECS,
    BROADWELL,
    HARDWARE,
    SKYLAKE,
    DramSpec,
    HardwareSpec,
    get_hardware,
    register_hardware,
    resolve_hardware,
    soc_from_spec,
)
from repro.memory.dram import ddr4_device, lpddr3_device
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SerialExecutor
from repro.runtime.jobs import (
    PlatformSpec,
    PolicySpec,
    SimSpec,
    SimulationJob,
    TraceSpec,
    job_from_dict,
)
from repro.sim.engine import SimulationEngine
from repro.sim.platform import build_platform
from repro.soc.broadwell import build_broadwell_soc
from repro.soc.skylake import SkylakeSoC
from repro.workloads.spec2006 import spec_workload

#: Golden content hashes of the registered anchor platforms.  These pin the
#: serialized hardware description: any field addition, rename, or default
#: change is a cache-invalidating schema change and must be made deliberately
#: (update the hash and bump HW_SCHEMA_VERSION when incompatible).
GOLDEN_HASHES = {
    "skylake": "c1e6a3032125320debd4161e718dd36e20a912a4a397663ce9a0922b06bf4c5d",
    "broadwell": "b5c3c60bd17afc0bf9518f115077f90b6679bae91876b8460d0e415cd42415d4",
}


class TestSerialization:
    def test_dict_round_trip(self):
        for spec in (SKYLAKE, BROADWELL, get_hardware("skylake-ddr4")):
            rebuilt = HardwareSpec.from_dict(spec.to_dict())
            assert rebuilt == spec
            assert rebuilt.content_hash == spec.content_hash

    def test_json_round_trip_is_exact(self):
        document = json.dumps(SKYLAKE.to_dict())
        rebuilt = HardwareSpec.from_dict(json.loads(document))
        assert rebuilt == SKYLAKE
        assert rebuilt.to_dict() == SKYLAKE.to_dict()

    def test_dram_spec_round_trip(self):
        spec = DRAM_SPECS["ddr4"]
        assert DramSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_legacy_three_knob_payload_decodes(self):
        """Old PlatformSpec payloads map onto the default Skylake description."""
        spec = HardwareSpec.from_dict(
            {"tdp": 7.0, "dram": "ddr4", "platform_fixed_power": 0.25}
        )
        assert spec.tdp == 7.0
        assert spec.dram == DRAM_SPECS["ddr4"]
        assert spec.platform_fixed_power == 0.25
        assert spec.cpu_ceff == config.CPU_CORE_CEFF  # defaults fill the rest

    def test_metadata_fields_do_not_change_hash_or_equality(self):
        """Names and blurbs label a description; they are not hardware.
        Renaming must never split the cache or break dedup."""
        relabelled = SKYLAKE.derive(
            name="skylake-rebadged",
            soc_name="Same Die, New Sticker",
            description="same hardware, new words",
        )
        assert relabelled == SKYLAKE
        assert relabelled.content_hash == SKYLAKE.content_hash
        for metadata_field in HardwareSpec.METADATA_FIELDS:
            assert metadata_field not in relabelled.to_dict()

    def test_registry_aliases_share_hashes_with_ad_hoc_derives(self):
        """skylake-7w IS skylake at 7 W: the two spellings must dedupe."""
        assert (
            SKYLAKE.derive(tdp=7.0).content_hash
            == get_hardware("skylake-7w").content_hash
        )
        assert (
            SKYLAKE.derive(dram="ddr4").content_hash
            == get_hardware("skylake-ddr4").content_hash
        )

    def test_golden_hashes(self):
        for name, expected in GOLDEN_HASHES.items():
            assert get_hardware(name).content_hash == expected, name


class TestDerive:
    def test_field_override(self):
        derived = SKYLAKE.derive(tdp=5.5, dram="ddr4")
        assert derived.tdp == 5.5
        assert derived.dram.technology == "ddr4"
        assert derived.cpu_ceff == SKYLAKE.cpu_ceff
        assert derived.content_hash != SKYLAKE.content_hash

    def test_scale_override(self):
        derived = SKYLAKE.derive(uncore_leakage_coeff_scale=1.08)
        assert derived.uncore_leakage_coeff == pytest.approx(
            SKYLAKE.uncore_leakage_coeff * 1.08
        )

    def test_unknown_override_rejected(self):
        with pytest.raises(KeyError):
            SKYLAKE.derive(nope=1)
        with pytest.raises(KeyError):
            SKYLAKE.derive(soc_name_scale=2.0)  # only numeric fields scale

    def test_set_and_scale_conflict_rejected(self):
        with pytest.raises(ValueError):
            SKYLAKE.derive(tdp=5.0, tdp_scale=2.0)

    def test_dram_accepts_device_objects(self):
        derived = SKYLAKE.derive(dram=ddr4_device())
        assert derived.dram == DRAM_SPECS["ddr4"]

    def test_validation_still_applies(self):
        with pytest.raises(ValueError):
            SKYLAKE.derive(tdp=-1.0)
        with pytest.raises(KeyError):
            SKYLAKE.derive(dram="hbm3")


class TestRegistry:
    def test_anchor_entries_present(self):
        for name in ("skylake", "broadwell", "skylake-ddr4", "skylake-lowleak"):
            assert name in HARDWARE

    def test_lookup_errors_list_known_names(self):
        with pytest.raises(KeyError, match="skylake"):
            get_hardware("pentium4")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_hardware(SKYLAKE.derive(description="same name"))

    def test_resolve_hardware(self):
        assert resolve_hardware(None) is SKYLAKE
        assert resolve_hardware("broadwell") is BROADWELL
        assert resolve_hardware(BROADWELL) is BROADWELL
        with pytest.raises(TypeError):
            resolve_hardware(42)

    def test_broadwell_matches_legacy_builder(self):
        """The registry delta reproduces the imperative Broadwell exactly."""
        legacy = build_broadwell_soc()
        spec_built = soc_from_spec(BROADWELL)
        assert spec_built.name == legacy.name
        assert spec_built.uncore.leakage_coeff == pytest.approx(
            legacy.uncore.leakage_coeff
        )
        assert spec_built.describe() == legacy.describe()


class TestSeedParity:
    """The default spec reproduces the seed platform bit-identically."""

    def test_soc_matches_dataclass_defaults(self):
        assert soc_from_spec(SKYLAKE).describe() == SkylakeSoC().describe()

    def test_platform_describe_matches_legacy_assembly(self):
        # build_platform(soc=...) is the seed's untouched assembly path over
        # the raw dataclass defaults -- the independent ground truth.
        assert SKYLAKE.build().describe() == build_platform(soc=SkylakeSoC()).describe()

    def test_simulation_results_bit_identical_to_seed_path(self):
        trace = spec_workload(name="470.lbm", duration=0.1)
        results = {}
        for label, platform in (
            ("spec", SKYLAKE.build()),
            ("seed", build_platform(soc=SkylakeSoC())),
        ):
            engine = SimulationEngine(platform)
            for policy_name in ("baseline", "sysscale"):
                policy = PolicySpec.make(policy_name).build(platform)
                results[(label, policy_name)] = engine.run(trace, policy).to_dict()
        assert results[("spec", "baseline")] == results[("seed", "baseline")]
        assert results[("spec", "sysscale")] == results[("seed", "sysscale")]

    def test_cold_and_warm_cache_are_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = [
            SimulationJob(
                trace=TraceSpec.make("spec", name="470.lbm", duration=0.05),
                policy=PolicySpec.make(policy),
                platform=SKYLAKE,
                sim=SimSpec(max_simulated_time=0.05),
            )
            for policy in ("baseline", "sysscale")
        ]
        cold = SerialExecutor().run(jobs, cache=cache)
        warm = SerialExecutor().run(jobs, cache=cache)
        assert cold.executed == 2 and warm.executed == 0
        assert warm.cache_hits == 2
        assert warm.payloads() == cold.payloads()


class TestRuntimeIntegration:
    def test_platform_spec_is_hardware_spec(self):
        assert PlatformSpec is HardwareSpec

    def test_job_hash_covers_full_hardware_description(self):
        """Any hardware field -- not just the legacy three knobs -- changes
        the job content hash, so variants cache as distinct jobs."""
        base = SimulationJob(
            trace=TraceSpec.make("spec", name="470.lbm", duration=0.05),
            policy=PolicySpec.make("baseline"),
        )
        for variant in (
            SKYLAKE.derive(uncore_leakage_coeff_scale=1.08),
            SKYLAKE.derive(cpu_ceff_scale=1.01),
            SKYLAKE.derive(v_sa_nominal=0.56),
            BROADWELL,
        ):
            changed = SimulationJob(
                trace=base.trace, policy=base.policy, platform=variant
            )
            assert changed.content_hash != base.content_hash

    def test_job_round_trip_with_variant_platform(self):
        job = SimulationJob(
            trace=TraceSpec.make("spec", name="470.lbm", duration=0.05),
            policy=PolicySpec.make("baseline"),
            platform=BROADWELL.derive(tdp=5.0),
        )
        rebuilt = job_from_dict(json.loads(json.dumps(job.to_dict())))
        assert rebuilt == job
        assert rebuilt.content_hash == job.content_hash

    def test_parallel_workers_rebuild_variant_platforms(self):
        """A derived spec crosses the process boundary and reproduces the
        serial results bit-identically in pool workers."""
        from repro.runtime.executor import ParallelExecutor

        variant = BROADWELL.derive(tdp=5.0)
        jobs = [
            SimulationJob(
                trace=TraceSpec.make("spec", name=name, duration=0.05),
                policy=PolicySpec.make(policy),
                platform=variant,
                sim=SimSpec(max_simulated_time=0.05),
            )
            for name in ("470.lbm", "416.gamess")
            for policy in ("baseline", "sysscale")
        ]
        serial = SerialExecutor().run(jobs)
        parallel = ParallelExecutor(max_workers=2).run(jobs)
        assert parallel.payloads() == serial.payloads()

    def test_dram_spec_builds_equivalent_devices(self):
        for name, factory in (("lpddr3", lpddr3_device), ("ddr4", ddr4_device)):
            built = DRAM_SPECS[name].device()
            reference = factory()
            assert built.technology == reference.technology
            assert built.frequency_bins == reference.frequency_bins
            assert built.describe() == reference.describe()


class TestHwCli:
    def test_hw_list_names_every_platform(self, capsys):
        from repro.runtime.cli import main

        assert main(["hw", "list"]) == 0
        output = capsys.readouterr().out
        for name in HARDWARE:
            assert name in output

    def test_hw_list_json(self, capsys):
        from repro.runtime.cli import main

        assert main(["hw", "list", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert HardwareSpec.from_dict(document["skylake"]) == SKYLAKE

    def test_hw_describe(self, capsys):
        from repro.runtime.cli import main

        assert main(["hw", "describe", "broadwell"]) == 0
        output = capsys.readouterr().out
        assert "Intel Core M-5Y71 (Broadwell)" in output
        assert BROADWELL.content_hash in output

    def test_hw_describe_json_round_trips(self, capsys):
        from repro.runtime.cli import main

        assert main(["hw", "describe", "skylake", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert HardwareSpec.from_dict(document["spec"]) == SKYLAKE
        assert document["content_hash"] == GOLDEN_HASHES["skylake"]

    def test_hw_describe_unknown_fails(self, capsys):
        from repro.runtime.cli import main

        assert main(["hw", "describe", "pentium4"]) == 2
        assert "unknown hardware" in capsys.readouterr().err

    def test_hw_hash_matches_golden(self, capsys):
        from repro.runtime.cli import main

        assert main(["hw", "hash", "skylake", "broadwell"]) == 0
        output = capsys.readouterr().out
        for name, digest in GOLDEN_HASHES.items():
            assert f"{digest}  {name}" in output

    def test_run_set_override_rejects_garbage(self, capsys):
        from repro.runtime.cli import main

        assert main(["run", "table2", "--no-cache", "--set", "nonsense"]) == 2
        assert "key=value" in capsys.readouterr().err
        assert main(["run", "table2", "--no-cache", "--set", "bogus=1"]) == 2
        assert "invalid hardware" in capsys.readouterr().err

    def test_run_platform_reaches_the_context(self, capsys):
        from repro.runtime.cli import main

        assert main(
            ["run", "table2", "--no-cache", "--platform", "broadwell"]
        ) == 0
        assert "Intel Core M-5Y71 (Broadwell)" in capsys.readouterr().out


class TestHwSweep:
    def test_quick_sweep_caches_and_reproduces(self, tmp_path, capsys):
        from repro.runtime.cli import main

        args = [
            "run", "hwsweep", "--quick",
            "--duration", "0.05", "--max-time", "0.05",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert ", 0 simulated" in warm

        def variant_lines(output):
            return [
                line for line in output.splitlines()
                if any(name in line for name in ("skylake", "broadwell"))
            ]

        assert variant_lines(warm) == variant_lines(cold)
        assert variant_lines(cold)

    def test_sweep_requires_two_variants(self):
        from repro.experiments.hwsweep import run_hwsweep

        with pytest.raises(ValueError):
            run_hwsweep(variants=("skylake",))

    def test_session_runs_hwsweep_with_params(self, tmp_path):
        from repro.api import Session

        session = Session(
            cache_dir=str(tmp_path / "cache"), max_time=0.05, duration=0.05
        )
        report = session.run(
            "hwsweep",
            variants=("skylake", "skylake-lowleak"),
            subset=("470.lbm", "416.gamess"),
        )
        variants = {row["variant"] for row in report["variants"]}
        assert variants == {"skylake", "skylake-lowleak"}

    def test_hw_variants_campaign_registered(self):
        from repro.runtime.campaign import CAMPAIGNS

        campaign = CAMPAIGNS["hw-variants"](True)
        assert len(campaign) > 0
        platforms = {job.platform.name for job in campaign.jobs}
        assert len(platforms) >= 3

    def test_context_hardware_joins_the_default_sweep(self, tmp_path):
        """--platform/--set hardware is swept, not silently ignored."""
        from repro.api import Session
        from repro.hw import SKYLAKE

        session = Session(
            cache_dir=str(tmp_path / "cache"),
            overrides={"uncore_leakage_coeff_scale": 1.25},
            max_time=0.05,
            duration=0.05,
        )
        report = session.run("hwsweep", quick=True, subset=("470.lbm",))
        variants = [row["variant"] for row in report["variants"]]
        # The derived context hardware leads the axis (1 + the 3 quick
        # defaults); both specs named "skylake" disambiguate by hash prefix.
        assert len(variants) == 4
        assert variants[0] == f"skylake@{session.hardware.content_hash[:8]}"
        assert f"skylake@{SKYLAKE.content_hash[:8]}" in variants[1:]
        assert "broadwell" in variants

    def test_single_string_params_are_not_iterated_charwise(self, tmp_path):
        from repro.experiments.hwsweep import run_hwsweep

        with pytest.raises(ValueError, match="at least two variants"):
            run_hwsweep(variants="broadwell")  # one variant, not 9 characters


class TestCampaignRebasing:
    def test_omitted_grid_axes_inherit_the_base_hardware(self):
        """Regression: rebasing a grid campaign must not silently reset the
        base's TDP or DRAM through the axis defaults."""
        from repro.runtime.campaign import scenario_campaign

        rebased = scenario_campaign(quick=True, hardware=get_hardware("skylake-7w"))
        assert {job.platform.tdp for job in rebased.jobs} == {7.0}
        ddr4 = scenario_campaign(quick=True, hardware=get_hardware("skylake-ddr4"))
        assert {job.platform.dram.technology for job in ddr4.jobs} == {"ddr4"}

    def test_explicit_axes_still_win(self):
        from repro.runtime.campaign import spec_tdp_campaign

        campaign = spec_tdp_campaign(quick=True, hardware=get_hardware("skylake-7w"))
        assert {job.platform.tdp for job in campaign.jobs} == {3.5, 4.5, 7.0}
        # ...but the non-axis fields stay rebased (dram inherited from base).
        assert {job.platform.dram.technology for job in campaign.jobs} == {"lpddr3"}

    def test_default_sysscale_table_matches_the_dram_family(self):
        """SysScale's "default" operating points on a DDR4 platform are the
        DDR4 table, not LPDDR3 frequencies the device does not support."""
        from repro.runtime.jobs import PolicySpec, platform_for

        platform = platform_for(get_hardware("skylake-ddr4"))
        policy = PolicySpec.make("sysscale").build(platform)
        frequencies = {
            point.dram_frequency for point in policy.operating_points
        }
        assert frequencies <= set(config.DDR4_FREQUENCY_BINS)


class TestSessionPlatform:
    def test_session_platform_and_overrides(self, tmp_path):
        from repro.api import Session

        session = Session(
            cache=False,
            platform="broadwell",
            overrides={"tdp": 5.0},
            max_time=0.05,
            duration=0.05,
        )
        assert session.hardware.name == "broadwell"
        assert session.hardware.tdp == 5.0
        result = session.simulate("spec", "baseline", name="470.lbm", duration=0.05)
        assert result.energy.total > 0
