"""Tests for workload traces: SPEC, graphics, battery-life, microbenchmarks, IO devices."""

import pytest

from repro import config
from repro.workloads.batterylife import BATTERY_LIFE_WORKLOADS, battery_life_suite, battery_life_workload
from repro.workloads.graphics import GRAPHICS_BENCHMARKS, graphics_suite, graphics_workload
from repro.workloads.io_devices import (
    CameraConfiguration,
    DisplayConfiguration,
    DisplayResolution,
    PeripheralConfiguration,
    STANDARD_CONFIGURATIONS,
)
from repro.workloads.microbenchmarks import peak_bandwidth_microbenchmark
from repro.workloads.spec2006 import (
    HIGHLY_SCALABLE_BENCHMARKS,
    MEMORY_BOUND_BENCHMARKS,
    MOTIVATION_BENCHMARKS,
    SPEC_CPU2006,
    spec_cpu2006_suite,
    spec_workload,
)
from repro.workloads.trace import Phase, PerformanceMetric, WorkloadClass


class TestPhase:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            Phase(name="bad", duration=1.0, compute_fraction=0.5, other_fraction=0.6)

    def test_validation_names_offending_field(self):
        """Synthesis must fail loudly with the bad field (and phase) named."""
        with pytest.raises(ValueError, match=r"'bad'.*duration"):
            Phase(name="bad", duration=0.0, compute_fraction=1.0)
        with pytest.raises(ValueError, match=r"'bad'.*gfx_fraction"):
            Phase(
                name="bad", duration=1.0, compute_fraction=1.2,
                gfx_fraction=-0.2,
            )
        with pytest.raises(ValueError, match=r"'bad'.*sum to 1.*compute_fraction=0.5"):
            Phase(name="bad", duration=1.0, compute_fraction=0.5, other_fraction=0.6)
        with pytest.raises(ValueError, match=r"'bad'.*io_bandwidth_demand"):
            Phase(
                name="bad", duration=1.0, compute_fraction=1.0,
                io_bandwidth_demand=-1.0,
            )
        with pytest.raises(ValueError, match=r"'bad'.*gfx_activity"):
            Phase(name="bad", duration=1.0, compute_fraction=1.0, gfx_activity=1.5)
        with pytest.raises(ValueError, match=r"'bad'.*active_cores"):
            Phase(name="bad", duration=1.0, compute_fraction=1.0, active_cores=-1)

    def test_trace_validation_names_offending_field(self):
        from repro.workloads.trace import WorkloadTrace

        phase = Phase(name="p", duration=1.0, compute_fraction=1.0)
        with pytest.raises(ValueError, match=r"'bad'.*at least one phase"):
            WorkloadTrace(
                name="bad", workload_class=WorkloadClass.CPU_SINGLE_THREAD, phases=(),
            )
        with pytest.raises(ValueError, match=r"'bad'.*reference_dram_frequency"):
            WorkloadTrace(
                name="bad", workload_class=WorkloadClass.CPU_SINGLE_THREAD,
                phases=(phase,), reference_dram_frequency=0.0,
            )

    def test_memory_bandwidth_demand_is_sum(self):
        phase = Phase(
            name="p", duration=1.0, compute_fraction=1.0,
            cpu_bandwidth_demand=1e9, gfx_bandwidth_demand=2e9, io_bandwidth_demand=3e9,
        )
        assert phase.memory_bandwidth_demand == pytest.approx(6e9)

    def test_scalability_equals_compute_fraction(self):
        phase = Phase(name="p", duration=1.0, compute_fraction=0.7, other_fraction=0.3)
        assert phase.scalability_with_cpu_frequency == pytest.approx(0.7)

    def test_scaled_duration(self):
        phase = Phase(name="p", duration=2.0, compute_fraction=1.0)
        assert phase.scaled_duration(0.5).duration == pytest.approx(1.0)
        with pytest.raises(ValueError):
            phase.scaled_duration(0.0)


class TestSpecSuite:
    def test_suite_has_29_benchmarks(self):
        assert len(SPEC_CPU2006) == 29
        assert len(spec_cpu2006_suite()) == 29

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            spec_workload("999.nonexistent")

    def test_motivation_benchmarks_exist(self):
        for name in MOTIVATION_BENCHMARKS:
            assert name in SPEC_CPU2006

    def test_highly_scalable_benchmarks_are_compute_bound(self):
        for name in HIGHLY_SCALABLE_BENCHMARKS:
            assert spec_workload(name).cpu_frequency_scalability > 0.9

    def test_memory_bound_benchmarks_have_low_scalability(self):
        for name in MEMORY_BOUND_BENCHMARKS:
            assert spec_workload(name).cpu_frequency_scalability < 0.35

    def test_lbm_has_highest_class_of_bandwidth_demand(self):
        lbm = spec_workload("470.lbm")
        assert lbm.average_bandwidth_demand > config.gbps(9.0)

    def test_spiky_workloads_have_multiple_phases(self):
        astar = spec_workload("473.astar")
        assert len(astar.phases) > 1
        demands = {phase.memory_bandwidth_demand for phase in astar.phases}
        assert max(demands) > 3 * min(demands)

    def test_spiky_average_matches_characteristics(self):
        astar = spec_workload("473.astar")
        expected = config.gbps(SPEC_CPU2006["473.astar"].demand_gbps)
        assert astar.average_bandwidth_demand == pytest.approx(expected, rel=0.05)

    def test_durations_respected(self):
        trace = spec_workload("416.gamess", duration=2.5)
        assert trace.total_duration == pytest.approx(2.5)

    def test_all_traces_are_multi_thread_class(self):
        for trace in spec_cpu2006_suite(subset=("416.gamess", "470.lbm")):
            assert trace.workload_class is WorkloadClass.CPU_MULTI_THREAD


class TestGraphicsSuite:
    def test_three_benchmarks(self):
        assert len(GRAPHICS_BENCHMARKS) == 3
        assert len(graphics_suite()) == 3

    def test_graphics_traces_are_gfx_dominated(self):
        for trace in graphics_suite():
            assert trace.gfx_frequency_scalability > 0.5
            assert trace.is_graphics_centric

    def test_3dmark11_has_highest_bandwidth_demand(self):
        demands = {
            trace.name: trace.average_bandwidth_demand for trace in graphics_suite()
        }
        assert demands["3DMark11"] == max(demands.values())

    def test_metric_is_fps(self):
        assert graphics_workload("3DMark06").metric is PerformanceMetric.FRAMES_PER_SECOND

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            graphics_workload("3DMark99")


class TestBatteryLifeSuite:
    def test_four_workloads(self):
        assert len(BATTERY_LIFE_WORKLOADS) == 4
        assert len(battery_life_suite()) == 4

    def test_fixed_performance_flag(self):
        for trace in battery_life_suite():
            assert trace.has_fixed_performance_demand
            assert trace.metric is PerformanceMetric.AVERAGE_POWER

    def test_video_playback_residency_matches_paper(self):
        trace = battery_life_workload("video_playback")
        steady = trace.phases[0]
        assert steady.residency.active_fraction == pytest.approx(0.10)
        assert steady.residency.dram_active_fraction == pytest.approx(0.15)

    def test_active_residencies_within_paper_range(self):
        for trace in battery_life_suite():
            active = trace.phases[0].residency.active_fraction
            assert 0.10 <= active <= 0.40

    def test_web_browsing_is_burstier_than_playback(self):
        web = BATTERY_LIFE_WORKLOADS["web_browsing"].burst_share
        playback = BATTERY_LIFE_WORKLOADS["video_playback"].burst_share
        assert web > playback

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            battery_life_workload("cryptomining")


class TestIoDevices:
    def test_hd_display_is_17_percent_of_peak(self):
        display = DisplayConfiguration(DisplayResolution.HD, panel_count=1)
        assert display.bandwidth_demand / config.LPDDR3_PEAK_BANDWIDTH == pytest.approx(0.17)

    def test_4k_display_is_70_percent_of_peak(self):
        display = DisplayConfiguration(DisplayResolution.UHD_4K, panel_count=1)
        assert display.bandwidth_demand / config.LPDDR3_PEAK_BANDWIDTH == pytest.approx(0.70)

    def test_three_panels_triple_the_demand(self):
        one = DisplayConfiguration(DisplayResolution.HD, panel_count=1)
        three = DisplayConfiguration(DisplayResolution.HD, panel_count=3)
        assert three.bandwidth_demand == pytest.approx(3 * one.bandwidth_demand)

    def test_more_than_three_panels_rejected(self):
        with pytest.raises(ValueError):
            DisplayConfiguration(DisplayResolution.HD, panel_count=4)

    def test_camera_bandwidth_scales_with_cameras(self):
        one = CameraConfiguration(active_cameras=1)
        two = CameraConfiguration(active_cameras=2)
        assert two.bandwidth_demand == pytest.approx(2 * one.bandwidth_demand)

    def test_isochronous_detection(self):
        assert PeripheralConfiguration().has_isochronous_traffic  # default has a panel
        none = PeripheralConfiguration(display=DisplayConfiguration(panel_count=0))
        assert not none.has_isochronous_traffic

    def test_standard_configurations_ordering(self):
        demands = {
            name: cfg.static_bandwidth_demand for name, cfg in STANDARD_CONFIGURATIONS.items()
        }
        assert demands["single_4k"] > demands["triple_hd"] > demands["single_hd"]
        assert demands["no_display"] == 0.0


class TestMicrobenchmarksAndTimeline:
    def test_peak_bandwidth_microbenchmark_is_bandwidth_bound(self):
        trace = peak_bandwidth_microbenchmark()
        assert trace.phases[0].memory_bandwidth_fraction >= 0.85

    def test_bandwidth_timeline_covers_duration(self):
        trace = spec_workload("473.astar", duration=1.0)
        timeline = trace.bandwidth_timeline(sample_interval=0.05)
        assert timeline[0][0] == pytest.approx(0.0)
        assert timeline[-1][0] <= trace.total_duration

    def test_phase_at_time(self):
        trace = spec_workload("473.astar", duration=1.0)
        assert trace.phase_at(0.0) is trace.phases[0]
        assert trace.phase_at(1e9) is trace.phases[-1]
        with pytest.raises(ValueError):
            trace.phase_at(-1.0)
