#!/usr/bin/env python3
"""TDP scaling scenario: SysScale's benefit across thermal design points (Fig. 10).

Builds one platform per TDP (3.5 W to 15 W), runs a representative SPEC subset
under the baseline and SysScale, and prints how the average and maximum benefit
shrink as the package budget grows -- the paper's conclusion that SysScale helps
TDP-constrained SoCs most.

The sweep goes through ``Session.run("fig10", subset=...)``: ``subset`` is one
of the extra parameters the fig10 spec declares (``python -m repro run --help``
lists them per target), and the returned ``ExperimentReport`` carries the
distribution table read below.

Run with::

    python examples/tdp_scaling.py
"""

from __future__ import annotations

from repro.api import Session
from repro.obs import Console

ui = Console()

SUBSET = (
    "400.perlbench", "416.gamess", "429.mcf", "433.milc", "436.cactusADM",
    "444.namd", "445.gobmk", "456.hmmer", "462.libquantum", "470.lbm",
    "473.astar", "482.sphinx3",
)

PAPER_AVERAGES = {3.5: 0.191, 4.5: 0.092}


def main() -> None:
    ui.out("Sweeping TDP points (a fresh platform and calibration per point) ...")
    session = Session(duration=0.5)
    result = session.run("fig10", subset=SUBSET)

    ui.out(f"\n{'TDP':>6s} {'average':>9s} {'median':>9s} {'max':>9s}   paper")
    for row in result["rows"]:
        paper = PAPER_AVERAGES.get(row["tdp_w"])
        paper_text = f"avg {paper:.1%}" if paper is not None else "-"
        ui.out(
            f"{row['tdp_w']:5.1f}W {row['average']:9.1%} {row['median']:9.1%} "
            f"{row['max']:9.1%}   {paper_text}"
        )

    ui.out(
        "\nAs the TDP grows, power stops being the constraint on the compute domain\n"
        "and redistributing the IO/memory budget buys less frequency, so SysScale's\n"
        "performance benefit fades -- while its battery-life savings are TDP\n"
        "independent (Sec. 7.4)."
    )
    ui.out(f"\nruntime: {session.summary()}")


if __name__ == "__main__":
    main()
