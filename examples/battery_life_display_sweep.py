#!/usr/bin/env python3
"""Battery-life scenario: how display configuration changes SysScale's savings.

The demand predictor treats display bandwidth as *static* demand read from the
peripheral configuration registers (Sec. 4.2): with one HD panel SysScale can hold
the low operating point for most of a video-playback session, while a 4K panel's
scanout traffic exceeds the static-demand threshold and forces the high operating
point, shrinking the savings.  This example sweeps the display configurations of
Fig. 3(b) through ``Session.simulate`` (the ``peripherals`` parameter names a
registered configuration) and reports the per-configuration average power and
savings.

Run with::

    python examples/battery_life_display_sweep.py
"""

from __future__ import annotations

from repro.api import Session
from repro.obs import Console
from repro.workloads import battery_life_workload
from repro.workloads.io_devices import STANDARD_CONFIGURATIONS

ui = Console()

CONFIGURATIONS = ("no_display", "single_hd", "single_fhd", "triple_hd", "single_4k")

WORKLOAD = "video_playback"


def main() -> None:
    ui.out("Building the session ...")
    session = Session()
    trace = battery_life_workload(WORKLOAD)

    ui.out(f"\nWorkload: {trace.name} ({trace.description})")
    ui.out(f"{'configuration':15s} {'static BW':>10s} {'baseline':>9s} {'SysScale':>9s} "
           f"{'saving':>8s} {'low residency':>14s}")
    for name in CONFIGURATIONS:
        peripherals = STANDARD_CONFIGURATIONS[name]
        baseline = session.simulate(
            "battery_life", "baseline", name=WORKLOAD, peripherals=name
        )
        sysscale = session.simulate(
            "battery_life", "sysscale", name=WORKLOAD, peripherals=name
        )
        saving = sysscale.power_reduction_vs(baseline)
        ui.out(
            f"{name:15s} {peripherals.static_bandwidth_demand / 1e9:8.1f}GB {baseline.average_power:8.2f}W "
            f"{sysscale.average_power:8.2f}W {saving:8.1%} {sysscale.low_point_residency:13.0%}"
        )

    ui.out(
        "\nWith a single HD panel the static demand stays below the threshold and the\n"
        "low operating point is held for most of the run (the Fig. 9 scenario); a 4K\n"
        "panel's scanout bandwidth forces the high operating point and the savings\n"
        "disappear -- demand misprediction would otherwise break the display's QoS."
    )
    ui.out(f"\nruntime: {session.summary()}")


if __name__ == "__main__":
    main()
