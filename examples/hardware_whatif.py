#!/usr/bin/env python3
"""Hardware what-if sweeps: SysScale's benefit as the die changes under it.

Platforms are data (``repro.hw``): this example runs the ``hwsweep``
experiment over the registered variants (Skylake, the Broadwell motivation
part, a low-leakage bin, the 7 W cTDP point, the DDR4 device), then mints an
*ad-hoc* variant with ``HardwareSpec.derive`` -- no registry entry, no
subclass -- and compares it against the stock die through the same cached
runtime.

Run with::

    python examples/hardware_whatif.py
"""

from __future__ import annotations

from repro.api import Session
from repro.hw import get_hardware
from repro.obs import Console

ui = Console()


def main() -> None:
    session = Session(duration=0.5)

    ui.out("Sweeping the registered hardware variants ...")
    report = session.run("hwsweep")
    ui.out(f"\n{'variant':18s} {'TDP':>5s} {'dram':>6s} {'energy':>8s} {'perf':>8s}")
    for row in report["variants"]:
        ui.out(
            f"{row['variant']:18s} {row['tdp_w']:4.1f}W {row['dram']:>6s} "
            f"{row['energy_reduction']:8.1%} {row['perf_impact']:8.1%}"
        )
    ui.out(f"spread across variants: {report['energy_reduction_spread']:.2%}")

    # An ad-hoc what-if: a hotter-uncore, lower-TDP die.  derive() deltas are
    # first-class platforms -- hashed, cached, and parallelized like any other.
    hot = get_hardware("skylake").derive(
        name="skylake-hot", tdp=3.5, uncore_leakage_coeff_scale=1.25
    )
    ui.out(f"\nAd-hoc variant {hot.label} (hash {hot.content_hash[:12]}...)")
    followup = session.run("hwsweep", variants=("skylake", hot))
    for row in followup["variants"]:
        ui.out(
            f"{row['variant']:18s} energy {row['energy_reduction']:6.1%}  "
            f"perf {row['perf_impact']:6.1%}  low-residency {row['low_residency']:6.1%}"
        )

    ui.out(
        "\nA hotter, more TDP-constrained die leaves the PBM less headroom, so\n"
        "redistributing the IO/memory budget buys relatively more -- the same\n"
        "conclusion as Fig. 10, reached by varying the hardware instead of the\n"
        "TDP knob alone."
    )
    ui.out(f"\nruntime: {session.summary()}")


if __name__ == "__main__":
    main()
