#!/usr/bin/env python3
"""Quickstart: compare SysScale against the baseline on one SPEC workload.

Uses the :class:`repro.api.Session` facade: one object wires up the Skylake
M-6Y75 platform of Table 2, the offline threshold calibration, and the cached
experiment runtime.  Each ``session.simulate(trace, policy, ...)`` call runs
one simulation through that runtime, so repeated runs are served from the
content-addressed result cache (watch the summary line at the end).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Session
from repro.obs import Console
from repro.workloads import spec_workload

ui = Console()


def run_one(session: Session, name: str) -> None:
    trace = spec_workload(name, duration=1.0)
    baseline = session.simulate("spec", "baseline", name=name, duration=1.0)
    sysscale = session.simulate("spec", "sysscale", name=name, duration=1.0)

    improvement = sysscale.performance_improvement_over(baseline)
    ui.out(f"\n{name}")
    ui.out(f"  CPU frequency scalability      : {trace.cpu_frequency_scalability:.2f}")
    ui.out(f"  average bandwidth demand       : {trace.average_bandwidth_demand / 1e9:.1f} GB/s")
    ui.out(f"  baseline  : {baseline.execution_time * 1e3:7.1f} ms at "
           f"{baseline.average_cpu_frequency / 1e9:.2f} GHz, {baseline.average_power:.2f} W")
    ui.out(f"  SysScale  : {sysscale.execution_time * 1e3:7.1f} ms at "
           f"{sysscale.average_cpu_frequency / 1e9:.2f} GHz, {sysscale.average_power:.2f} W")
    ui.out(f"  low operating-point residency  : {sysscale.low_point_residency:.0%}")
    ui.out(f"  DVFS transitions               : {sysscale.transitions}")
    ui.out(f"  performance improvement        : {improvement:+.1%}")


def main() -> None:
    ui.out("Building the session (Table 2 platform at 4.5 W TDP, cached runtime) ...")
    session = Session(tdp=4.5)

    ui.out("Calibrated demand-prediction thresholds (Sec. 4.2):")
    for counter, value in session.context.thresholds.as_dict().items():
        ui.out(f"  {counter:35s} {value:.3f}")

    # A highly scalable workload: SysScale drops the IO/memory domains to the low
    # operating point and hands the freed budget to the CPU cores.
    run_one(session, "416.gamess")
    # A bandwidth-saturated workload: the predictor keeps the high operating point
    # and performance is untouched.
    run_one(session, "470.lbm")
    # A phase-varying workload: SysScale tracks the phases (Sec. 7.1, 473.astar).
    run_one(session, "473.astar")

    ui.out(f"\nruntime: {session.summary()}")


if __name__ == "__main__":
    main()
