#!/usr/bin/env python3
"""Quickstart: compare SysScale against the baseline on one SPEC workload.

Builds the Skylake M-6Y75 platform of Table 2, runs a compute-bound and a
memory-bound SPEC CPU2006 workload under the fixed baseline and under SysScale,
and prints what SysScale did (operating-point residency, average frequencies,
performance and power deltas).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SysScaleController, build_platform, SimulationEngine
from repro.baselines import FixedBaselinePolicy
from repro.core.sysscale import default_thresholds
from repro.workloads import spec_workload


def run_one(engine, platform, thresholds, name: str) -> None:
    trace = spec_workload(name, duration=1.0)
    baseline = engine.run(trace, FixedBaselinePolicy())
    sysscale = engine.run(trace, SysScaleController(platform=platform, thresholds=thresholds))

    improvement = sysscale.performance_improvement_over(baseline)
    print(f"\n{name}")
    print(f"  CPU frequency scalability      : {trace.cpu_frequency_scalability:.2f}")
    print(f"  average bandwidth demand       : {trace.average_bandwidth_demand / 1e9:.1f} GB/s")
    print(f"  baseline  : {baseline.execution_time * 1e3:7.1f} ms at "
          f"{baseline.average_cpu_frequency / 1e9:.2f} GHz, {baseline.average_power:.2f} W")
    print(f"  SysScale  : {sysscale.execution_time * 1e3:7.1f} ms at "
          f"{sysscale.average_cpu_frequency / 1e9:.2f} GHz, {sysscale.average_power:.2f} W")
    print(f"  low operating-point residency  : {sysscale.low_point_residency:.0%}")
    print(f"  DVFS transitions               : {sysscale.transitions}")
    print(f"  performance improvement        : {improvement:+.1%}")


def main() -> None:
    print("Building the Skylake M-6Y75 platform (Table 2) at 4.5 W TDP ...")
    platform = build_platform(tdp=4.5)
    engine = SimulationEngine(platform)

    print("Calibrating the demand-prediction thresholds offline (Sec. 4.2) ...")
    thresholds = default_thresholds(platform)
    print("Calibrated thresholds:")
    for counter, value in thresholds.as_dict().items():
        print(f"  {counter:35s} {value:.3f}")

    # A highly scalable workload: SysScale drops the IO/memory domains to the low
    # operating point and hands the freed budget to the CPU cores.
    run_one(engine, platform, thresholds, "416.gamess")
    # A bandwidth-saturated workload: the predictor keeps the high operating point
    # and performance is untouched.
    run_one(engine, platform, thresholds, "470.lbm")
    # A phase-varying workload: SysScale tracks the phases (Sec. 7.1, 473.astar).
    run_one(engine, platform, thresholds, "473.astar")


if __name__ == "__main__":
    main()
