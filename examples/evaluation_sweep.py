#!/usr/bin/env python3
"""Regenerate the paper's headline evaluation (Figs. 7, 8, 9) in one run.

Runs the full SPEC CPU2006 suite, the three 3DMark variants, and the four
battery-life workloads under the baseline, SysScale, and the projected
MemScale-Redist / CoScale-Redist comparison points, then prints the per-workload
rows and the averages next to the numbers the paper reports.

Everything goes through the :class:`repro.api.Session` facade: ``--jobs N``
fans the simulations out over N worker processes, and the content-addressed
result cache makes warm reruns near-instant (the summary line reports how many
simulations were served from cache).  Each figure comes back as a structured
``ExperimentReport`` whose tables/metrics are read by key -- the same document
``python -m repro run fig7 --json`` exports.

Run with::

    python examples/evaluation_sweep.py                # full SPEC suite (slower)
    python examples/evaluation_sweep.py --quick        # representative SPEC subset
    python examples/evaluation_sweep.py --jobs 4       # four worker processes
    python examples/evaluation_sweep.py --no-cache     # always simulate
"""

from __future__ import annotations

import argparse

from repro.api import Session
from repro.experiments import format_table
from repro.obs import Console
from repro.runtime.cache import default_cache_dir

ui = Console()

PAPER_NUMBERS = {
    "fig7": {"memscale_redist": 0.017, "coscale_redist": 0.038, "sysscale": 0.092},
    "fig8": {"3DMark06": 0.089, "3DMark11": 0.067, "3DMark Vantage": 0.081},
    "fig9": {
        "web_browsing": 0.064, "light_gaming": 0.095,
        "video_conferencing": 0.076, "video_playback": 0.107,
    },
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use a 12-benchmark SPEC subset")
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes (default 1: serial execution)",
    )
    parser.add_argument(
        "--cache-dir", default=default_cache_dir(), metavar="DIR",
        help="result cache directory (default .repro-cache, or $REPRO_CACHE_DIR)",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the result cache")
    args = parser.parse_args()

    ui.out("Building the session (platform + threshold calibration) ...")
    session = Session(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        cache=not args.no_cache,
        duration=0.5 if args.quick else 1.0,
    )

    # ---- Fig. 7: SPEC CPU2006 ------------------------------------------------
    ui.out("\nRunning the SPEC CPU2006 evaluation (Fig. 7) ...")
    fig7 = session.run("fig7", quick=args.quick)
    ui.out(format_table(fig7["rows"], ["workload", "memscale_redist", "coscale_redist", "sysscale"]))
    ui.out("averages (measured vs. paper):")
    for technique, paper_value in PAPER_NUMBERS["fig7"].items():
        ui.out(f"  {technique:16s} {fig7['average'][technique]:6.1%}   (paper {paper_value:.1%})")

    # ---- Fig. 8: 3DMark --------------------------------------------------------
    ui.out("\nRunning the 3DMark evaluation (Fig. 8) ...")
    fig8 = session.run("fig8")
    ui.out(format_table(fig8["rows"], ["workload", "memscale_redist", "coscale_redist", "sysscale"]))
    for row in fig8["rows"]:
        paper_value = PAPER_NUMBERS["fig8"][row["workload"]]
        ui.out(f"  {row['workload']:16s} {row['sysscale']:6.1%}   (paper {paper_value:.1%})")

    # ---- Fig. 9: battery life --------------------------------------------------
    ui.out("\nRunning the battery-life evaluation (Fig. 9) ...")
    fig9 = session.run("fig9")
    ui.out(format_table(
        fig9["rows"],
        ["workload", "baseline_power_w", "memscale_redist", "coscale_redist", "sysscale"],
    ))
    for row in fig9["rows"]:
        paper_value = PAPER_NUMBERS["fig9"][row["workload"]]
        ui.out(f"  {row['workload']:20s} {row['sysscale']:6.1%}   (paper {paper_value:.1%})")

    # ---- Runtime accounting ----------------------------------------------------
    ui.out(f"\nruntime: {session.summary()}")
    if session.runtime.cache is not None:
        ui.out(f"cache: {session.runtime.cache.root} ({len(session.runtime.cache)} entries)")


if __name__ == "__main__":
    main()
