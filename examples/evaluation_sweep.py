#!/usr/bin/env python3
"""Regenerate the paper's headline evaluation (Figs. 7, 8, 9) in one run.

Runs the full SPEC CPU2006 suite, the three 3DMark variants, and the four
battery-life workloads under the baseline, SysScale, and the projected
MemScale-Redist / CoScale-Redist comparison points, then prints the per-workload
rows and the averages next to the numbers the paper reports.

Run with::

    python examples/evaluation_sweep.py            # full SPEC suite (slower)
    python examples/evaluation_sweep.py --quick    # representative SPEC subset
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    build_context,
    format_table,
    run_fig7_spec,
    run_fig8_graphics,
    run_fig9_battery_life,
)

QUICK_SUBSET = (
    "400.perlbench", "416.gamess", "429.mcf", "433.milc", "436.cactusADM",
    "444.namd", "445.gobmk", "456.hmmer", "462.libquantum", "470.lbm",
    "473.astar", "482.sphinx3",
)

PAPER_NUMBERS = {
    "fig7": {"memscale_redist": 0.017, "coscale_redist": 0.038, "sysscale": 0.092},
    "fig8": {"3DMark06": 0.089, "3DMark11": 0.067, "3DMark Vantage": 0.081},
    "fig9": {
        "web_browsing": 0.064, "light_gaming": 0.095,
        "video_conferencing": 0.076, "video_playback": 0.107,
    },
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use a 12-benchmark SPEC subset")
    args = parser.parse_args()

    print("Building the experiment context (platform + threshold calibration) ...")
    context = build_context(workload_duration=0.5 if args.quick else 1.0)

    # ---- Fig. 7: SPEC CPU2006 ------------------------------------------------
    print("\nRunning the SPEC CPU2006 evaluation (Fig. 7) ...")
    fig7 = run_fig7_spec(context, subset=QUICK_SUBSET if args.quick else None)
    print(format_table(fig7["rows"], ["workload", "memscale_redist", "coscale_redist", "sysscale"]))
    print("averages (measured vs. paper):")
    for technique, paper_value in PAPER_NUMBERS["fig7"].items():
        print(f"  {technique:16s} {fig7['average'][technique]:6.1%}   (paper {paper_value:.1%})")

    # ---- Fig. 8: 3DMark --------------------------------------------------------
    print("\nRunning the 3DMark evaluation (Fig. 8) ...")
    fig8 = run_fig8_graphics(context)
    print(format_table(fig8["rows"], ["workload", "memscale_redist", "coscale_redist", "sysscale"]))
    for row in fig8["rows"]:
        paper_value = PAPER_NUMBERS["fig8"][row["workload"]]
        print(f"  {row['workload']:16s} {row['sysscale']:6.1%}   (paper {paper_value:.1%})")

    # ---- Fig. 9: battery life --------------------------------------------------
    print("\nRunning the battery-life evaluation (Fig. 9) ...")
    fig9 = run_fig9_battery_life(context)
    print(format_table(
        fig9["rows"],
        ["workload", "baseline_power_w", "memscale_redist", "coscale_redist", "sysscale"],
    ))
    for row in fig9["rows"]:
        paper_value = PAPER_NUMBERS["fig9"][row["workload"]]
        print(f"  {row['workload']:20s} {row['sysscale']:6.1%}   (paper {paper_value:.1%})")


if __name__ == "__main__":
    main()
