#!/usr/bin/env python
"""Reject bare ``print()`` calls in ``src/repro`` and ``examples``.

All user-facing text must go through :class:`repro.obs.logging.Console`, which
enforces the CLI output contract (primary output vs. decorations vs.
diagnostics).  This walks every module's AST -- so ``print(`` inside docstrings
and comments does not trip it -- and fails the build when a new call sneaks in.

Usage: ``python tools/lint_prints.py [ROOT ...]`` (default roots:
``src/repro`` and ``examples``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Roots linted when none are named on the command line.
DEFAULT_ROOTS = ("src/repro", "examples")

#: Files allowed to write to stdout/stderr directly.  The Console *is* the
#: rendering layer, so it is the one justified user of the raw streams.
WHITELIST = {
    "src/repro/obs/logging.py",
}


def find_prints(path: Path) -> list:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    offenders = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            offenders.append(node.lineno)
    return offenders


def main(argv: list) -> int:
    roots = [Path(arg) for arg in argv[1:]] or [Path(r) for r in DEFAULT_ROOTS]
    failures = 0
    for root in roots:
        for path in sorted(root.rglob("*.py")):
            relative = path.as_posix()
            if relative in WHITELIST:
                continue
            for lineno in find_prints(path):
                print(f"{relative}:{lineno}: bare print() -- use repro.obs Console")
                failures += 1
    if failures:
        print(f"{failures} bare print call(s); see repro/obs/logging.py")
        return 1
    print(f"lint_prints: OK ({', '.join(str(root) for root in roots)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
