#!/usr/bin/env python
"""Compatibility shim: the print ban now lives in ``repro.analysis.lint``.

The standalone AST walker this file used to contain grew into the repo's
general invariant linter -- ``python -m repro lint`` -- whose ``console``
rule enforces the same contract (all user-facing text goes through
:class:`repro.obs.logging.Console`) over ``src/repro``, ``tests``,
``tools``, and ``examples``.  This shim keeps the old entry point and exit
semantics alive for muscle memory and any scripts that still call it.

Usage: ``python tools/lint_prints.py [ROOT ...]`` -- equivalent to
``python -m repro lint [ROOT ...]`` restricted to the ``console`` rule.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.lint.cli import run_lint  # noqa: E402


def main(argv: list) -> int:
    return run_lint(argv[1:], rules=["console"], repo_root=REPO_ROOT)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
