"""Packaging for the SysScale reproduction.

There is no ``pyproject.toml`` in this repository (offline environments without
the ``wheel``/``build`` packages still need ``pip install -e .`` to work), so
all metadata lives here: the full ``src/repro`` package tree and the ``repro``
console script that fronts the runtime CLI (``python -m repro`` works too).
"""

from setuptools import find_packages, setup

setup(
    name="repro-sysscale",
    version="1.4.0",
    description=(
        "Trace-driven reproduction of SysScale (Haj-Yahya et al., ISCA 2020): "
        "multi-domain DVFS for energy-efficient mobile SoCs, with a parallel, "
        "content-addressed experiment runtime"
    ),
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro = repro.runtime.cli:main",
        ]
    },
)
