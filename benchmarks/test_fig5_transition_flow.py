"""Benchmark: exercise the Fig. 5 transition flow and its < 10 us latency budget."""

from conftest import report

from repro.experiments import format_table, run_fig5_transition_flow


def test_fig5_transition_flow(benchmark, context):
    result = benchmark(run_fig5_transition_flow, context)
    report("Fig. 5 / Sec. 5: transition flow latency", format_table(result["transitions"]))
    assert result["within_budget"]
    assert result["worst_latency_us"] <= result["budget_us"]
    # Both directions (high->low and low->high) were exercised.
    assert len(result["transitions"]) == 2
    assert any(row["increasing_frequency"] for row in result["transitions"])
