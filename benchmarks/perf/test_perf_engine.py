"""Engine-loop microbenchmarks (the pytest-benchmark side of ``repro bench``).

``python -m repro bench`` is the authoritative harness -- it measures the
fast/reference speedup in one invocation and writes ``BENCH_6.json``.  These
benchmarks track the same hot paths under pytest-benchmark so regressions show
up in the ordinary benchmark run alongside the per-figure timings:

* the segment-stepping loop on a battery-life trace (the motivating Sec. 7.3
  shape) and on a Markov scenario walk (the memo-friendly shape);
* the seed per-tick reference loop on the same battery-life trace, so the
  amortization factor stays visible in the comparison table;
* a serial executor batch over deduplicated scenario jobs (jobs/sec).
"""

from __future__ import annotations

import pytest

from repro.baselines.fixed import FixedBaselinePolicy
from repro.runtime.executor import SerialExecutor
from repro.runtime.jobs import PolicySpec, SimSpec, SimulationJob, TraceSpec, _build_sysscale
from repro.scenarios.registry import SCENARIOS
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.workloads.batterylife import battery_life_workload

MAX_TIME = 0.5


@pytest.fixture(scope="module")
def battery_trace():
    return battery_life_workload("video_playback", cycles=1)


@pytest.fixture(scope="module")
def markov_trace():
    return SCENARIOS["markov-mobile-day"].build()


def test_engine_segment_loop_battery(benchmark, context, battery_trace):
    engine = SimulationEngine(
        context.platform, SimulationConfig(max_simulated_time=MAX_TIME)
    )
    result = benchmark(engine.run, battery_trace, FixedBaselinePolicy())
    assert result.execution_time > 0
    assert engine.last_run_stats.memo_hits > 0


def test_engine_reference_loop_battery(benchmark, context, battery_trace):
    engine = SimulationEngine(
        context.platform,
        SimulationConfig(max_simulated_time=MAX_TIME, reference_loop=True),
    )
    result = benchmark(engine.run, battery_trace, FixedBaselinePolicy())
    assert result.execution_time > 0
    assert engine.last_run_stats.model_evaluations == engine.last_run_stats.ticks


def test_engine_segment_loop_markov_sysscale(benchmark, context, markov_trace):
    engine = SimulationEngine(
        context.platform, SimulationConfig(max_simulated_time=MAX_TIME)
    )
    result = benchmark(
        engine.run, markov_trace, _build_sysscale(context.platform)
    )
    assert result.execution_time > 0


def test_runtime_serial_jobs(benchmark, context):
    """Deduplicated scenario jobs through the serial executor, no cache."""
    jobs = [
        SimulationJob(
            trace=SCENARIOS[name].trace_spec(),
            policy=PolicySpec.make(policy),
            sim=SimSpec(max_simulated_time=0.1),
        )
        for name in ("bursty-heavy", "periodic-fast")
        for policy in ("baseline", "sysscale")
    ]
    report = benchmark(SerialExecutor().run, jobs)
    assert report.executed == len(jobs)
