"""Benchmark: regenerate Table 2 (SoC and memory parameters)."""

from conftest import report

from repro.experiments import format_table, run_table2


def test_table2_parameters(benchmark, context):
    result = benchmark(run_table2, context)
    rows = {row["parameter"]: row["value"] for row in result["rows"]}
    report("Table 2: SoC and memory parameters", format_table(result["rows"]))
    assert rows["CPU core base frequency (GHz)"] == 1.2
    assert rows["Graphics engine base frequency (MHz)"] == 300
    assert rows["L3 cache / LLC (MiB)"] == 4
    assert rows["Thermal design power (W)"] == 4.5
    assert rows["Peak memory bandwidth (GB/s)"] == 25.6
