"""Benchmark: regenerate Fig. 9 (battery-life average-power reduction)."""

from conftest import report

from repro.experiments import format_table, run_fig9_battery_life


def test_fig9_battery_life(benchmark, context):
    result = benchmark(run_fig9_battery_life, context)
    columns = ["workload", "baseline_power_w", "memscale_redist", "coscale_redist", "sysscale"]
    report("Fig. 9: battery-life average power reduction", format_table(result["rows"], columns))

    rows = {row["workload"]: row for row in result["rows"]}
    # Paper shape: SysScale reduces average power by roughly 6-11 % (6.4 % web
    # browsing ... 10.7 % video playback), about 5x the prior techniques, and the
    # prior techniques are equal to each other for these workloads.
    for row in result["rows"]:
        assert 0.03 < row["sysscale"] < 0.20
        assert row["sysscale"] > 1.5 * row["memscale_redist"]
        assert abs(row["memscale_redist"] - row["coscale_redist"]) < 0.01
    assert rows["video_playback"]["sysscale"] > rows["web_browsing"]["sysscale"]
    assert rows["light_gaming"]["sysscale"] > rows["web_browsing"]["sysscale"]
