"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  The experiment
context (platform + threshold calibration) is built once per session so the
individual benchmarks measure the experiment itself, not the setup.
"""

from __future__ import annotations

import pytest

from repro.experiments import build_context


@pytest.fixture(scope="session")
def context():
    """Shared experiment context (Skylake, 4.5 W TDP, Table 2 configuration)."""
    return build_context(workload_duration=0.5)


def report(title: str, lines) -> None:
    """Print a small report block that survives pytest-benchmark's output."""
    print(f"\n=== {title} ===")
    if isinstance(lines, str):
        lines = [lines]
    for line in lines:
        print(line)
