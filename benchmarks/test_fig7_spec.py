"""Benchmark: regenerate Fig. 7 (SPEC CPU2006 performance improvements)."""

from conftest import report

from repro.experiments import format_table, run_fig7_spec


def test_fig7_spec_cpu2006(benchmark, context):
    result = benchmark.pedantic(run_fig7_spec, args=(context,), rounds=1, iterations=1)
    columns = ["workload", "memscale_redist", "coscale_redist", "sysscale"]
    report("Fig. 7: SPEC CPU2006 performance improvement", format_table(result["rows"], columns))
    average = result["average"]
    report(
        "Fig. 7 averages",
        [
            f"MemScale-Redist : {average['memscale_redist']:.1%} (paper 1.7%)",
            f"CoScale-Redist  : {average['coscale_redist']:.1%} (paper 3.8%)",
            f"SysScale        : {average['sysscale']:.1%} (paper 9.2%)",
            f"SysScale max    : {result['max']['sysscale']:.1%} (paper up to 16%)",
        ],
    )

    # Paper shape: SysScale > CoScale-Redist > MemScale-Redist on average, with a
    # several-fold gap between SysScale and the prior techniques; SysScale's best
    # case is well into double digits while memory-bound workloads gain ~nothing.
    assert average["sysscale"] > average["coscale_redist"] > average["memscale_redist"]
    assert average["sysscale"] > 1.5 * average["coscale_redist"]
    assert 0.04 < average["sysscale"] < 0.15
    assert 0.10 < result["max"]["sysscale"] < 0.25
    rows = {row["workload"]: row for row in result["rows"]}
    for memory_bound in ("410.bwaves", "433.milc", "470.lbm"):
        assert rows[memory_bound]["sysscale"] < 0.02
    for scalable in ("416.gamess", "444.namd"):
        assert rows[scalable]["sysscale"] > 0.10
