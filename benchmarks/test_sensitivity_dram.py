"""Benchmark: regenerate the Sec. 7.4 DRAM-frequency sensitivity results."""

from conftest import report

from repro.experiments import run_dram_frequency_sensitivity


def test_dram_frequency_sensitivity(benchmark, context):
    result = benchmark.pedantic(
        run_dram_frequency_sensitivity, args=(context,), kwargs={"corpus_size": 60},
        rounds=1, iterations=1,
    )
    report(
        "Sec. 7.4: DRAM device / operating-point sensitivity",
        [
            f"LPDDR3 1.6->1.06 GHz freed power : {result['lpddr3_power_savings_w']:.3f} W",
            f"DDR4   1.86->1.33 GHz freed power: {result['ddr4_power_savings_w']:.3f} W "
            f"({result['ddr4_savings_deficit']:.1%} less; paper ~7% less)",
            f"extra power from the 0.8 GHz bin : {result['extra_savings_from_0p8_bin_w']:.3f} W",
            f"degradation 0.8 GHz vs 1.06 GHz  : {result['degradation_ratio_0p8_vs_1p06']:.1f}x "
            "(paper 2-3x)",
        ],
    )
    # Paper shape: DDR4 scaling frees somewhat less power than LPDDR3 scaling; the
    # 0.8 GHz bin adds little power headroom (V_SA already at Vmin) while hurting
    # performance 2-3x more, so two operating points suffice.
    assert result["ddr4_power_savings_w"] < result["lpddr3_power_savings_w"]
    assert result["degradation_ratio_0p8_vs_1p06"] > 1.5
    assert result["extra_savings_from_0p8_bin_w"] < 0.5 * result["lpddr3_power_savings_w"]
