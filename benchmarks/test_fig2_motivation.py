"""Benchmark: regenerate Fig. 2 (motivation: static MD-DVFS on three SPEC workloads)."""

from conftest import report

from repro.experiments import format_table, run_fig2_motivation


def test_fig2_motivation(benchmark, context):
    result = benchmark(run_fig2_motivation, context)
    impact = {row["workload"]: row for row in result["impact"]}
    report(
        "Fig. 2(a): MD-DVFS impact",
        format_table(result["impact"]),
    )
    report("Fig. 2(b): bottleneck analysis", format_table(result["bottlenecks"]))
    report("Fig. 2(c): bandwidth demand", format_table(result["bandwidth_demand"]))

    # Paper shape: all three workloads save ~10 % average power; cactusADM and lbm
    # lose >10 % performance while perlbench barely changes; redistributing the
    # saved power helps perlbench (~8 %) but not the memory-bound workloads.
    for row in result["impact"]:
        assert row["power_reduction"] > 0.05
    assert impact["400.perlbench"]["performance_change"] > -0.03
    assert impact["436.cactusADM"]["performance_change"] < -0.05
    assert impact["470.lbm"]["performance_change"] < -0.08
    assert impact["400.perlbench"]["performance_with_redistribution"] > 0.03
    bottlenecks = {row["workload"]: row for row in result["bottlenecks"]}
    assert bottlenecks["436.cactusADM"]["memory_latency_bound"] > bottlenecks[
        "436.cactusADM"
    ]["memory_bandwidth_bound"]
    assert bottlenecks["470.lbm"]["memory_bandwidth_bound"] > 0.4
