"""Benchmark: regenerate Fig. 10 (SysScale benefit vs. thermal design power)."""

from conftest import report

from repro.experiments import run_fig10_tdp_sensitivity

#: A representative SPEC subset keeps the four-TDP sweep inside a few minutes
#: while preserving the distribution shape (compute-bound, mixed, memory-bound).
SUBSET = (
    "400.perlbench", "416.gamess", "429.mcf", "433.milc", "436.cactusADM",
    "444.namd", "445.gobmk", "456.hmmer", "462.libquantum", "470.lbm",
    "473.astar", "482.sphinx3",
)


def test_fig10_tdp_sensitivity(benchmark):
    result = benchmark.pedantic(
        run_fig10_tdp_sensitivity,
        kwargs={"subset": SUBSET, "workload_duration": 0.5},
        rounds=1,
        iterations=1,
    )
    rows = {row["tdp_w"]: row for row in result["rows"]}
    report(
        "Fig. 10: SysScale benefit vs. TDP (SPEC subset)",
        [
            f"TDP {tdp:>4.1f} W : avg {row['average']:.1%}  median {row['median']:.1%}  "
            f"max {row['max']:.1%}"
            for tdp, row in sorted(rows.items())
        ],
    )

    # Paper shape: the benefit grows as the TDP shrinks (19.1 % average / up to
    # 33 % at 3.5 W vs. 9.2 % average at 4.5 W) and fades at high TDPs where power
    # is no longer scarce.
    assert rows[3.5]["average"] > rows[4.5]["average"] > rows[7.0]["average"] >= rows[15.0]["average"]
    assert rows[3.5]["average"] > 1.3 * rows[4.5]["average"]
    assert rows[3.5]["max"] > 0.15
    assert rows[15.0]["average"] < 0.05
