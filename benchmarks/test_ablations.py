"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper figures; they quantify how much each SysScale ingredient
contributes on this model: MRC re-optimization during DVFS, the transition-latency
assumption, the evaluation-interval length, and the threshold margin.
"""

import pytest
from conftest import report

from repro import config
from repro.baselines.fixed import FixedBaselinePolicy
from repro.core.operating_points import OperatingPoint, OperatingPointTable
from repro.core.sysscale import SysScaleController
from repro.experiments.runner import mean
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.workloads.spec2006 import spec_cpu2006_suite

SUBSET = ("400.perlbench", "416.gamess", "444.namd", "456.hmmer", "473.astar", "470.lbm")


def _improvements(context, engine, controller_factory):
    values = []
    for trace in spec_cpu2006_suite(duration=0.5, subset=SUBSET):
        baseline = engine.run(trace, FixedBaselinePolicy())
        sysscale = engine.run(trace, controller_factory())
        values.append(sysscale.performance_improvement_over(baseline))
    return values


def test_ablation_mrc_reoptimization(benchmark, context):
    """SysScale with vs. without per-frequency MRC re-optimization (Fig. 4 tie-in)."""
    engine = context.engine

    def run_both():
        with_mrc = mean(_improvements(context, engine, context.sysscale))

        stale_points = OperatingPointTable(
            points=[
                OperatingPoint("high", 1.6e9, config.IO_INTERCONNECT_HIGH_FREQUENCY, 1.0, 1.0,
                               mrc_optimized=True),
                OperatingPoint("low_stale_mrc", 1.06e9, config.IO_INTERCONNECT_LOW_FREQUENCY,
                               config.V_SA_LOW_SCALE, config.V_IO_LOW_SCALE, mrc_optimized=False),
            ]
        )

        def stale_controller():
            return SysScaleController(
                platform=context.platform,
                operating_points=stale_points,
                thresholds=context.thresholds,
            )

        without_mrc = mean(_improvements(context, engine, stale_controller))
        return with_mrc, without_mrc

    with_mrc, without_mrc = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report(
        "Ablation: MRC re-optimization",
        [
            f"SysScale with optimized MRC   : {with_mrc:.1%}",
            f"SysScale with stale MRC       : {without_mrc:.1%}",
        ],
    )
    assert with_mrc >= without_mrc - 0.005


def test_ablation_transition_latency(benchmark, context):
    """Nominal 10 us transitions vs. 100x slower transitions (prior-work style)."""
    def run_both():
        fast_engine = context.engine
        fast = mean(_improvements(context, fast_engine, context.sysscale))

        def slow_controller():
            controller = context.sysscale()
            controller.flow.firmware_latency = 100 * config.TRANSITION_TOTAL_LATENCY_BUDGET
            return controller

        slow = mean(_improvements(context, fast_engine, slow_controller))
        return fast, slow

    fast, slow = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report(
        "Ablation: transition latency",
        [f"10 us transitions : {fast:.1%}", f"slow transitions  : {slow:.1%}"],
    )
    # With 30 ms evaluation intervals even slow transitions cost little, which is
    # exactly why the paper can afford a firmware-driven flow.
    assert abs(fast - slow) < 0.02


@pytest.mark.parametrize("interval_ms", [10.0, 30.0, 100.0])
def test_ablation_evaluation_interval(benchmark, context, interval_ms):
    """Sensitivity of SysScale's benefit to the evaluation-interval length."""
    engine = SimulationEngine(
        context.platform, SimulationConfig(evaluation_interval=interval_ms * 1e-3)
    )

    def run():
        return mean(_improvements(context, engine, context.sysscale))

    improvement = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        f"Ablation: evaluation interval {interval_ms:.0f} ms",
        [f"average SPEC-subset improvement: {improvement:.1%}"],
    )
    assert improvement > 0.02
