"""Benchmark: regenerate Fig. 3 (bandwidth demand over time and per component)."""

from conftest import report

from repro.experiments import format_table, run_fig3_bandwidth_demand


def test_fig3_bandwidth_demand(benchmark, context):
    result = benchmark(run_fig3_bandwidth_demand, context)
    report("Fig. 3(b): component bandwidth demand", format_table(result["component_demand"]))

    rows = {row["configuration"]: row for row in result["component_demand"]}
    # HD panel ~17 % of peak, 4K ~70 %, three HD panels ~3x one (Fig. 3(b)).
    assert abs(rows["single_hd"]["fraction_of_peak"] - 0.17) < 0.02
    assert abs(rows["single_4k"]["fraction_of_peak"] - 0.70) < 0.03
    assert abs(rows["triple_hd"]["fraction_of_peak"] - 3 * rows["single_hd"]["fraction_of_peak"]) < 0.01

    # Fig. 3(a): demand varies over time (astar alternates low/high phases) and
    # across workloads (lbm's demand is consistently high).
    astar = [point["bandwidth_gbps"] for point in result["timelines"]["473.astar"]]
    lbm = [point["bandwidth_gbps"] for point in result["timelines"]["470.lbm"]]
    assert max(astar) > 2 * min(astar)
    assert min(lbm) > 8.0
