"""Benchmark: regenerate Fig. 6 (actual vs. predicted performance impact, 9 panels)."""

from conftest import report

from repro.experiments import format_table, run_fig6_prediction


def test_fig6_prediction(benchmark, context):
    result = benchmark.pedantic(run_fig6_prediction, args=(context,), rounds=1, iterations=1)
    columns = [
        "workload_class", "high_ghz", "low_ghz", "workloads",
        "correlation", "accuracy", "false_positives",
    ]
    report("Fig. 6: actual vs. predicted performance impact", format_table(result["panels"], columns))
    report(
        "Fig. 6 summary",
        [
            f"evaluation points      : {result['total_evaluation_points']} (paper >1600)",
            f"minimum panel accuracy : {result['minimum_accuracy']:.1%} (paper 94.2-98.8%)",
            f"total false positives  : {result['total_false_positives']} (paper: none)",
        ],
    )
    # Paper shape: >1600 evaluation points, high accuracy, (near-)zero false
    # positives, and a strong actual-vs-predicted correlation.  The synthetic
    # corpus has one weak panel (graphics at 1.6->1.06 GHz, where many workloads
    # sit within a fraction of a percent of the degradation bound), so the
    # assertions bound the mean accuracy tightly and the worst panel loosely; see
    # EXPERIMENTS.md for the discussion of this deviation.
    assert result["total_evaluation_points"] >= 1600
    assert result["mean_accuracy"] > 0.85
    assert result["minimum_accuracy"] > 0.45
    assert result["total_false_positives"] <= 0.05 * result["total_evaluation_points"]
    for panel in result["panels"]:
        assert panel["correlation"] > 0.5
    # Dropping to 0.8 GHz hurts more than dropping to 1.06 GHz (Sec. 7.4).
    by_pair = {}
    for panel in result["panels"]:
        by_pair.setdefault(panel["low_ghz"], []).append(panel["mean_degradation"])
    assert (sum(by_pair[0.8]) / len(by_pair[0.8])) > (sum(by_pair[1.06]) / len(by_pair[1.06]))
