"""Benchmark: regenerate Fig. 8 (3DMark performance improvements)."""

from conftest import report

from repro.experiments import format_table, run_fig8_graphics


def test_fig8_graphics(benchmark, context):
    result = benchmark(run_fig8_graphics, context)
    columns = ["workload", "memscale_redist", "coscale_redist", "sysscale"]
    report("Fig. 8: 3DMark performance improvement", format_table(result["rows"], columns))

    rows = {row["workload"]: row for row in result["rows"]}
    # Paper shape: SysScale improves all three variants by mid-single-digit to
    # high-single-digit percentages (8.9/6.7/8.1 %), several times more than
    # MemScale-R / CoScale-R, which are nearly identical to each other because the
    # CPU already runs at its lowest frequency.
    for row in result["rows"]:
        assert 0.02 < row["sysscale"] < 0.15
        assert row["sysscale"] > 1.5 * row["memscale_redist"]
        assert abs(row["memscale_redist"] - row["coscale_redist"]) < 0.01
    assert rows["3DMark11"]["sysscale"] <= rows["3DMark06"]["sysscale"]
    assert rows["3DMark11"]["sysscale"] <= rows["3DMark Vantage"]["sysscale"]
