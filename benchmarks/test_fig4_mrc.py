"""Benchmark: regenerate Fig. 4 (impact of unoptimized MRC values)."""

from conftest import report

from repro.experiments import run_fig4_mrc_impact


def test_fig4_mrc_impact(benchmark, context):
    result = benchmark(run_fig4_mrc_impact, context)
    report(
        "Fig. 4: unoptimized MRC impact (peak-bandwidth microbenchmark)",
        [
            f"performance degradation : {result['performance_degradation']:.1%} (paper ~10%)",
            f"memory power increase   : {result['memory_power_increase']:.1%} (paper ~22%)",
            f"SoC power increase      : {result['soc_power_increase']:.1%}",
        ],
    )
    # Paper shape: ~10 % performance loss and a substantial power increase.
    assert 0.05 < result["performance_degradation"] < 0.20
    assert result["memory_power_increase"] > 0.05
    assert result["unoptimized_bandwidth_gbps"] < result["optimized_bandwidth_gbps"]
