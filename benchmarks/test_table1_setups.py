"""Benchmark: regenerate Table 1 (baseline vs. MD-DVFS setups)."""

from conftest import report

from repro.experiments import format_table, run_table1


def test_table1_setups(benchmark, context):
    result = benchmark(run_table1, context)
    rows = result["rows"]
    report("Table 1: experimental setups", format_table(rows))
    by_component = {row["component"]: row for row in rows}
    assert by_component["DRAM frequency (GHz)"]["baseline"] == 1.6
    assert by_component["DRAM frequency (GHz)"]["md_dvfs"] == 1.06
    assert by_component["IO interconnect (GHz)"]["md_dvfs"] == 0.4
    assert by_component["Shared voltage (x V_SA)"]["md_dvfs"] == 0.8
    assert by_component["DDRIO digital (x V_IO)"]["md_dvfs"] == 0.85
